package workload

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// legacyGenerate is a verbatim pin of the pre-stream materializing
// generator. The streaming engine must reproduce its output bit-for-bit
// so the Fig. 5 paired-trace experiments stay valid; if Stream's legacy
// path ever drifts, TestStreamMatchesLegacy catches it against this copy,
// not against the adapter under test. (Event.User post-dates the pinned
// algorithm; -1 is the documented "no user model" value.)
func legacyGenerate(cfg Config) *Trace {
	types := cfg.Types
	if len(types) == 0 {
		types = DefaultTypes()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}
	if cfg.RatePerMin == 0 {
		return tr
	}
	meanGap := time.Duration(60.0 / cfg.RatePerMin * float64(time.Second))
	at := time.Duration(0)
	seq := 0
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if gap < time.Millisecond {
			gap = time.Millisecond
		}
		at += gap
		if at > cfg.Duration {
			return tr
		}
		producer := rng.Intn(cfg.NumNodes)
		tr.Events = append(tr.Events, Event{
			At:         at,
			Producer:   producer,
			User:       -1,
			Type:       types[seq%len(types)],
			Requesters: drawRequesters(rng, cfg.Requesters, producer, cfg.RequestsPerItem),
		})
		seq++
	}
}

// TestStreamMatchesLegacy is the differential gate: for legacy configs
// the streaming generator (and therefore Generate, its adapter) must
// reproduce the pinned materializing algorithm event-for-event.
func TestStreamMatchesLegacy(t *testing.T) {
	configs := map[string]Config{
		"base": baseConfig(),
		"no-requesters": {
			Duration: 200 * time.Minute, RatePerMin: 3, NumNodes: 10, Seed: 7,
		},
		"wide-pool": {
			Duration: 100 * time.Minute, RatePerMin: 1.5, NumNodes: 50,
			Requesters: []int{0, 1, 2, 3, 4, 5, 6, 7}, RequestsPerItem: 3,
			Types: []string{"A", "B"}, Seed: 42,
		},
		"single-node": {
			Duration: 60 * time.Minute, RatePerMin: 2, NumNodes: 1,
			Requesters: []int{0}, RequestsPerItem: 1, Seed: 3,
		},
		"zero-rate": {
			Duration: 60 * time.Minute, RatePerMin: 0, NumNodes: 5, Seed: 9,
		},
	}
	for name, cfg := range configs {
		for seed := int64(0); seed < 4; seed++ {
			cfg.Seed += seed
			want := legacyGenerate(cfg)
			got, err := Generate(cfg)
			if err != nil {
				t.Fatalf("%s/seed+%d: %v", name, seed, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s/seed+%d: stream diverged from pinned legacy generator: %d vs %d events",
					name, seed, want.Len(), got.Len())
			}
			// Same through the streaming interface directly.
			s, err := NewStream(cfg.Stream())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; ; i++ {
				ev, ok := s.Next()
				if !ok {
					if i != want.Len() {
						t.Fatalf("%s/seed+%d: stream ended after %d events, want %d", name, seed, i, want.Len())
					}
					break
				}
				if !reflect.DeepEqual(ev, want.Events[i]) {
					t.Fatalf("%s/seed+%d: event %d differs: %+v vs %+v", name, seed, i, ev, want.Events[i])
				}
			}
		}
	}
}

// drainN pulls up to n events, failing the test if the stream is invalid.
func mustStream(t *testing.T, cfg StreamConfig) *Stream {
	t.Helper()
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestArrivalRateWithin3Sigma checks that over a long horizon the event
// count lands within 3σ of the configured mean for each arrival process
// (Poisson count: σ = √mean).
func TestArrivalRateWithin3Sigma(t *testing.T) {
	const horizon = 2000 * time.Minute
	cases := []struct {
		name string
		cfg  StreamConfig
		mean float64 // expected events
	}{
		{
			name: "poisson",
			cfg:  StreamConfig{Duration: horizon, RatePerMin: 5, NumNodes: 16, Seed: 11},
			mean: 5 * 2000,
		},
		{
			// Whole diurnal periods: the sinusoid integrates to zero, so
			// the mean is the base rate.
			name: "diurnal",
			cfg: StreamConfig{
				Duration: horizon, RatePerMin: 5, NumNodes: 16, Seed: 12,
				DiurnalPeriod: 100 * time.Minute, DiurnalAmplitude: 0.8,
			},
			mean: 5 * 2000,
		},
		{
			// 10× bursts for 1/10 of every cycle: mean factor 1.9.
			name: "burst",
			cfg: StreamConfig{
				Duration: horizon, RatePerMin: 5, NumNodes: 16, Seed: 13,
				BurstEvery: 100 * time.Minute, BurstDuration: 10 * time.Minute,
				BurstFactor: 10,
			},
			mean: 5 * 2000 * 1.9,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustStream(t, tc.cfg)
			n := float64(s.Drain().Len())
			sigma := math.Sqrt(tc.mean)
			if math.Abs(n-tc.mean) > 3*sigma {
				t.Fatalf("%.0f events, want %.0f ± %.0f (3σ)", n, tc.mean, 3*sigma)
			}
		})
	}
}

// TestBurstWindowRate checks the burst actually concentrates arrivals:
// the in-window rate must be close to BurstFactor times the out-window
// rate, not merely preserve the global mean.
func TestBurstWindowRate(t *testing.T) {
	cfg := StreamConfig{
		Duration: 4000 * time.Minute, RatePerMin: 5, NumNodes: 4, Seed: 5,
		BurstEvery: 100 * time.Minute, BurstDuration: 20 * time.Minute,
		BurstOffset: 10 * time.Minute, BurstFactor: 8,
	}
	s := mustStream(t, cfg)
	var in, out float64
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.At >= cfg.BurstOffset && (ev.At-cfg.BurstOffset)%cfg.BurstEvery < cfg.BurstDuration {
			in++
		} else {
			out++
		}
	}
	// Per-minute rates: 20 of every 100 minutes are in-window.
	inRate := in / (4000 * 20 / 100)
	outRate := out / (4000 * 80 / 100)
	if ratio := inRate / outRate; ratio < 6 || ratio > 10 {
		t.Fatalf("burst/base rate ratio %.2f, want ≈8", ratio)
	}
}

// TestZipfPopularityMonotone checks Zipf-skewed type draws are monotone
// non-increasing in rank: rank 0 most popular, each later rank no more
// popular than the one before (within sampling noise — with s=2 and this
// many samples the ordering is unambiguous).
func TestZipfPopularityMonotone(t *testing.T) {
	types := []string{"r0", "r1", "r2", "r3", "r4", "r5"}
	cfg := StreamConfig{
		Duration: 200 * time.Minute, RatePerMin: 600, NumNodes: 8,
		Types: types, TypeZipfS: 2, Seed: 21,
	}
	s := mustStream(t, cfg)
	counts := make(map[string]int)
	total := 0
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		counts[ev.Type]++
		total++
	}
	if total < 50000 {
		t.Fatalf("only %d samples, want a long horizon", total)
	}
	for i := 1; i < len(types); i++ {
		if counts[types[i]] > counts[types[i-1]] {
			t.Fatalf("popularity not monotone in rank: %v", counts)
		}
	}
	if counts[types[0]] < total/2 {
		t.Fatalf("rank 0 has %d of %d draws — not Zipf(2) skewed", counts[types[0]], total)
	}
}

// TestUserZipfSkew checks the producing-user distribution is skewed when
// UserZipfS is set: low-ranked users dominate even with a huge population.
func TestUserZipfSkew(t *testing.T) {
	cfg := StreamConfig{
		Duration: 100 * time.Minute, RatePerMin: 600, NumNodes: 32,
		Users: 5_000_000, UserZipfS: 1.5, Seed: 31,
	}
	s := mustStream(t, cfg)
	counts := make(map[int64]int)
	total := 0
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.User < 0 || ev.User >= cfg.Users {
			t.Fatalf("user %d outside population", ev.User)
		}
		counts[ev.User]++
		total++
	}
	top := 0
	for u, c := range counts {
		if u < 100 {
			top += c
		}
	}
	if float64(top) < 0.5*float64(total) {
		t.Fatalf("top-100 users produced %d of %d events — no skew", top, total)
	}
}

// TestMobilityNeverDeadNode is the liveness-mask property: with a user
// population, mobility epochs, and an alive mask, no emitted event may
// name a dead or out-of-range producer — across mask changes mid-stream.
func TestMobilityNeverDeadNode(t *testing.T) {
	const n = 64
	cfg := StreamConfig{
		Duration: 500 * time.Minute, RatePerMin: 60, NumNodes: n,
		Users: 1_000_000, SessionEpoch: 5 * time.Minute, Seed: 41,
	}
	s := mustStream(t, cfg)
	dead := map[int]bool{}
	s.SetAlive(func(node int) bool { return !dead[node] })
	i := 0
	for {
		// Shift which third of the fleet is down as the stream progresses.
		phase := i / 1000 % 3
		for node := 0; node < n; node++ {
			dead[node] = node%3 == phase
		}
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev.Producer < 0 || ev.Producer >= n {
			t.Fatalf("event %d producer %d out of range", i, ev.Producer)
		}
		if dead[ev.Producer] {
			t.Fatalf("event %d assigned to dead node %d", i, ev.Producer)
		}
		i++
	}
	if i == 0 {
		t.Fatal("stream produced no events")
	}

	// All nodes dead: every arrival is skipped, none emitted.
	s2 := mustStream(t, cfg)
	s2.SetAlive(func(int) bool { return false })
	if _, ok := s2.Next(); ok {
		t.Fatal("event emitted with every node dead")
	}
	if s2.Skipped() == 0 {
		t.Fatal("no skipped arrivals counted")
	}
}

// TestAliveMaskDoesNotPerturbArrivals: the liveness probe consumes no
// randomness, so masking nodes changes only the producer column — times,
// users, and types stay identical.
func TestAliveMaskDoesNotPerturbArrivals(t *testing.T) {
	cfg := StreamConfig{
		Duration: 100 * time.Minute, RatePerMin: 30, NumNodes: 16,
		Users: 10_000, SessionEpoch: time.Minute, Seed: 51,
	}
	plain := mustStream(t, cfg).Drain()
	masked := mustStream(t, cfg)
	masked.SetAlive(func(node int) bool { return node%2 == 0 })
	for i := 0; ; i++ {
		ev, ok := masked.Next()
		if !ok {
			if i != plain.Len() {
				t.Fatalf("masked stream has %d events, plain %d", i, plain.Len())
			}
			break
		}
		want := plain.Events[i]
		if ev.At != want.At || ev.User != want.User || ev.Type != want.Type {
			t.Fatalf("event %d drifted under mask: %+v vs %+v", i, ev, want)
		}
		if ev.Producer%2 != 0 {
			t.Fatalf("event %d on masked-out node %d", i, ev.Producer)
		}
	}
}

// TestSessionEpochMobility: users change home nodes across epochs (the
// mobility model) but keep a stable node within one epoch.
func TestSessionEpochMobility(t *testing.T) {
	const n = 32
	moved := 0
	for user := int64(0); user < 1000; user++ {
		a := sessionNode(9, user, 0, n)
		b := sessionNode(9, user, 1, n)
		if a < 0 || a >= n || b < 0 || b >= n {
			t.Fatalf("session node out of range: %d, %d", a, b)
		}
		if a != b {
			moved++
		}
		if sessionNode(9, user, 0, n) != a {
			t.Fatal("session map not stable within an epoch")
		}
	}
	// A uniform remap moves a user with probability (n-1)/n ≈ 97%.
	if moved < 900 {
		t.Fatalf("only %d/1000 users moved across epochs", moved)
	}

	// The hash spreads users evenly over nodes.
	counts := make([]int, n)
	for user := int64(0); user < 32000; user++ {
		counts[sessionNode(9, user, 0, n)]++
	}
	for node, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("node %d hosts %d of 32000 users — session map not uniform", node, c)
		}
	}
}

// TestStreamConfigValidation covers the satellite requester-sampling
// fixes (empty pool, RequestsPerItem over pool size now fail eagerly)
// plus the rest of the hostile-config surface.
func TestStreamConfigValidation(t *testing.T) {
	valid := StreamConfig{Duration: time.Minute, RatePerMin: 1, NumNodes: 4, Seed: 1}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*StreamConfig){
		"zero nodes":        func(c *StreamConfig) { c.NumNodes = 0 },
		"negative rate":     func(c *StreamConfig) { c.RatePerMin = -1 },
		"nan rate":          func(c *StreamConfig) { c.RatePerMin = math.NaN() },
		"inf rate":          func(c *StreamConfig) { c.RatePerMin = math.Inf(1) },
		"negative duration": func(c *StreamConfig) { c.Duration = -time.Second },
		"empty requester pool": func(c *StreamConfig) {
			c.RequestsPerItem = 1
		},
		"requests exceed pool": func(c *StreamConfig) {
			c.Requesters = []int{1, 2}
			c.RequestsPerItem = 3
		},
		"negative requests": func(c *StreamConfig) {
			c.Requesters = []int{1}
			c.RequestsPerItem = -1
		},
		"requester out of range": func(c *StreamConfig) {
			c.Requesters = []int{4}
			c.RequestsPerItem = 1
		},
		"negative requester": func(c *StreamConfig) {
			c.Requesters = []int{-1}
			c.RequestsPerItem = 1
		},
		"amplitude above 1": func(c *StreamConfig) {
			c.DiurnalPeriod = time.Minute
			c.DiurnalAmplitude = 1.5
		},
		"amplitude without period": func(c *StreamConfig) { c.DiurnalAmplitude = 0.5 },
		"negative period":          func(c *StreamConfig) { c.DiurnalPeriod = -time.Minute },
		"burst duration over cycle": func(c *StreamConfig) {
			c.BurstEvery = time.Minute
			c.BurstDuration = 2 * time.Minute
			c.BurstFactor = 2
		},
		"burst factor below 1": func(c *StreamConfig) {
			c.BurstEvery = time.Minute
			c.BurstDuration = time.Second
			c.BurstFactor = 0.5
		},
		"burst knobs without cycle": func(c *StreamConfig) { c.BurstFactor = 2 },
		"zipf s at 1":               func(c *StreamConfig) { c.TypeZipfS = 1 },
		"zipf s nan":                func(c *StreamConfig) { c.TypeZipfS = math.NaN() },
		"negative users":            func(c *StreamConfig) { c.Users = -1 },
		"user zipf without users":   func(c *StreamConfig) { c.UserZipfS = 2 },
		"epoch without users":       func(c *StreamConfig) { c.SessionEpoch = time.Minute },
		"negative epoch": func(c *StreamConfig) {
			c.Users = 10
			c.SessionEpoch = -time.Second
		},
	}
	for name, mutate := range cases {
		cfg := valid
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := NewStream(cfg); err == nil {
			t.Errorf("%s: NewStream accepted", name)
		}
	}
}

// TestGenerateRequesterEdgeCases pins the satellite fix on the legacy
// entry point: these used to silently cap at generation time.
func TestGenerateRequesterEdgeCases(t *testing.T) {
	cfg := baseConfig()
	cfg.Requesters = nil
	if _, err := Generate(cfg); err == nil {
		t.Fatal("empty requester pool with RequestsPerItem > 0 accepted")
	}
	cfg = baseConfig()
	cfg.RequestsPerItem = len(cfg.Requesters) + 1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("RequestsPerItem above pool size accepted")
	}
	// RequestsPerItem == len(pool) stays legal: when the producer is in
	// the pool the draw caps at pool-1, as before.
	cfg = baseConfig()
	cfg.RequestsPerItem = len(cfg.Requesters)
	if _, err := Generate(cfg); err != nil {
		t.Fatalf("RequestsPerItem == pool size rejected: %v", err)
	}
}

// TestGenerateChurn checks determinism, bounds, and protection of the
// churn trace generator.
func TestGenerateChurn(t *testing.T) {
	cfg := ChurnConfig{
		Horizon: 60 * time.Minute, EventsPerMin: 0.5, MeanDown: 2 * time.Minute,
		NumNodes: 16, Protect: []int{0, 1}, Seed: 6,
	}
	a, err := GenerateChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different churn traces")
	}
	if len(a) < 10 {
		t.Fatalf("only %d churn events over an hour at 0.5/min", len(a))
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].At < a[j].At }) {
		t.Fatal("churn trace out of order")
	}
	for i, ev := range a {
		if ev.At > cfg.Horizon {
			t.Fatalf("churn event %d beyond horizon", i)
		}
		if ev.Node < 2 || ev.Node >= cfg.NumNodes {
			t.Fatalf("churn event %d hit protected/out-of-range node %d", i, ev.Node)
		}
		if ev.Down < time.Second {
			t.Fatalf("churn event %d outage %v below floor", i, ev.Down)
		}
	}

	if _, err := GenerateChurn(ChurnConfig{NumNodes: 2, Protect: []int{0, 1}, EventsPerMin: 1, Horizon: time.Minute}); err == nil {
		t.Fatal("fully protected population accepted")
	}
	if _, err := GenerateChurn(ChurnConfig{NumNodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := GenerateChurn(ChurnConfig{NumNodes: 4, Protect: []int{9}}); err == nil {
		t.Fatal("out-of-range protected node accepted")
	}
	if evs, err := GenerateChurn(ChurnConfig{NumNodes: 4, EventsPerMin: 0, Horizon: time.Hour}); err != nil || len(evs) != 0 {
		t.Fatalf("zero-rate churn: %v, %d events", err, len(evs))
	}
}

// TestStreamHotPathAllocs is the generator's alloc gate: steady-state
// Next must allocate nothing without a requester draw and exactly one
// slice (the returned requester set) with one.
func TestStreamHotPathAllocs(t *testing.T) {
	lean := mustStream(t, StreamConfig{
		Duration: time.Hour << 8, RatePerMin: 6000, NumNodes: 256,
		Users: 1_000_000, SessionEpoch: time.Minute,
		DiurnalPeriod: time.Hour, DiurnalAmplitude: 0.5,
		BurstEvery: time.Hour, BurstDuration: time.Minute, BurstFactor: 4,
		Seed: 61,
	})
	lean.SetAlive(func(node int) bool { return node%7 != 0 })
	if n := testing.AllocsPerRun(5000, func() {
		if _, ok := lean.Next(); !ok {
			t.Fatal("stream exhausted mid-gate")
		}
	}); n != 0 {
		t.Fatalf("requester-free Next allocates %.2f/op, want 0", n)
	}

	full := mustStream(t, StreamConfig{
		Duration: time.Hour << 8, RatePerMin: 6000, NumNodes: 256,
		Requesters: []int{1, 2, 3, 4, 5, 6, 7, 8}, RequestsPerItem: 3,
		Seed: 62,
	})
	if n := testing.AllocsPerRun(5000, func() {
		if _, ok := full.Next(); !ok {
			t.Fatal("stream exhausted mid-gate")
		}
	}); n > 1 {
		t.Fatalf("Next with requester draw allocates %.2f/op, want ≤ 1", n)
	}
}

// BenchmarkStreamNext measures the open-loop generator's event cost with
// the full feature set enabled (diurnal × burst thinning, million-user
// session map with mobility, Zipf types, requester draw).
func BenchmarkStreamNext(b *testing.B) {
	s, err := NewStream(StreamConfig{
		Duration: time.Hour << 12, RatePerMin: 6000, NumNodes: 256,
		Requesters: []int{1, 2, 3, 4, 5, 6, 7, 8}, RequestsPerItem: 2,
		Users: 1_000_000, UserZipfS: 1.2, SessionEpoch: time.Minute,
		DiurnalPeriod: time.Hour, DiurnalAmplitude: 0.5,
		BurstEvery: 6 * time.Hour, BurstDuration: 10 * time.Minute, BurstFactor: 10,
		TypeZipfS: 1.5, Seed: 71,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Next(); !ok {
			b.Fatal("stream exhausted")
		}
	}
}

// FuzzWorkloadConfig throws hostile configurations at validation and the
// generator: NewStream must either reject the config or produce a
// well-formed bounded stream — never panic.
func FuzzWorkloadConfig(f *testing.F) {
	f.Add(int64(60_000), 2.0, int64(0), 0.0, int64(0), int64(0), int64(0), 0.0,
		30, 3, 1, 0.0, int64(0), 0.0, int64(0), int64(1))
	f.Add(int64(10_000), 600.0, int64(5000), 0.9, int64(7000), int64(500), int64(100), 10.0,
		256, 8, 3, 1.5, int64(1_000_000), 1.2, int64(1000), int64(7))
	f.Add(int64(-5), math.Inf(1), int64(-1), math.NaN(), int64(1), int64(2), int64(-3), 0.1,
		0, -2, 99, 1.0, int64(-8), math.NaN(), int64(-9), int64(0))
	f.Fuzz(func(t *testing.T, durMs int64, rate float64, diurMs int64, amp float64,
		burstEveryMs, burstDurMs, burstOffMs int64, burstFactor float64,
		numNodes, poolSize, rpi int, typeS float64, users int64, userS float64,
		epochMs int64, seed int64) {
		// Bound the horizon so a valid config drains in bounded work; every
		// other field is taken as-is, hostile values included.
		cfg := StreamConfig{
			Duration:         time.Duration(durMs%60_000) * time.Millisecond,
			RatePerMin:       rate,
			DiurnalPeriod:    time.Duration(diurMs) * time.Millisecond,
			DiurnalAmplitude: amp,
			BurstEvery:       time.Duration(burstEveryMs) * time.Millisecond,
			BurstDuration:    time.Duration(burstDurMs) * time.Millisecond,
			BurstOffset:      time.Duration(burstOffMs) * time.Millisecond,
			BurstFactor:      burstFactor,
			NumNodes:         numNodes,
			RequestsPerItem:  rpi,
			TypeZipfS:        typeS,
			Users:            users,
			UserZipfS:        userS,
			SessionEpoch:     time.Duration(epochMs) * time.Millisecond,
			Seed:             seed,
		}
		if poolSize > 0 {
			for i := 0; i < poolSize%64; i++ {
				cfg.Requesters = append(cfg.Requesters, i*3-1)
			}
		}
		s, err := NewStream(cfg)
		if err != nil {
			return
		}
		var prev time.Duration
		for i := 0; i < 500; i++ {
			ev, ok := s.Next()
			if !ok {
				break
			}
			if ev.At < prev || ev.At > cfg.Duration {
				t.Fatalf("event %d at %v out of order/horizon (prev %v)", i, ev.At, prev)
			}
			prev = ev.At
			if ev.Producer < 0 || ev.Producer >= cfg.NumNodes {
				t.Fatalf("event %d producer %d out of range", i, ev.Producer)
			}
			if cfg.Users == 0 && ev.User != -1 {
				t.Fatalf("event %d has user %d without a user model", i, ev.User)
			}
			if cfg.Users > 0 && (ev.User < 0 || ev.User >= cfg.Users) {
				t.Fatalf("event %d user %d outside population", i, ev.User)
			}
			if len(ev.Requesters) > cfg.RequestsPerItem {
				t.Fatalf("event %d has %d requesters, want ≤ %d", i, len(ev.Requesters), cfg.RequestsPerItem)
			}
			for _, r := range ev.Requesters {
				if r == ev.Producer || r < 0 || r >= cfg.NumNodes {
					t.Fatalf("event %d bad requester %d", i, r)
				}
			}
		}
	})
}

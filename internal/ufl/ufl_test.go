package ufl

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance builds a random metric-ish instance with nf facilities and
// nc clients placed on a line (so connection costs obey the triangle
// inequality, like the paper's hop-count RDC).
func randomInstance(rng *rand.Rand, nf, nc int, maxOpen float64) *Instance {
	fpos := make([]float64, nf)
	cpos := make([]float64, nc)
	for i := range fpos {
		fpos[i] = rng.Float64() * 100
	}
	for j := range cpos {
		cpos[j] = rng.Float64() * 100
	}
	in := &Instance{
		OpenCost: make([]float64, nf),
		ConnCost: make([][]float64, nf),
	}
	for i := range in.OpenCost {
		in.OpenCost[i] = rng.Float64() * maxOpen
		in.ConnCost[i] = make([]float64, nc)
		for j := range in.ConnCost[i] {
			in.ConnCost[i][j] = math.Abs(fpos[i] - cpos[j])
		}
	}
	return in
}

type solver struct {
	name string
	fn   func(*Instance) (*Solution, error)
}

func solvers() []solver {
	return []solver{
		{"greedy", Greedy},
		{"localsearch", func(in *Instance) (*Solution, error) { return LocalSearch(in, nil) }},
		{"jms", JMS},
	}
}

func TestSolversFeasibleOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		in := randomInstance(rng, 2+rng.Intn(10), 2+rng.Intn(15), 50)
		for _, s := range solvers() {
			sol, err := s.fn(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.name, err)
			}
			if err := sol.Verify(in); err != nil {
				t.Fatalf("trial %d %s: %v", trial, s.name, err)
			}
		}
	}
}

func TestSolversNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	worst := map[string]float64{}
	for trial := 0; trial < 40; trial++ {
		in := randomInstance(rng, 2+rng.Intn(8), 2+rng.Intn(12), 40)
		opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range solvers() {
			sol, err := s.fn(in)
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			ratio := sol.Cost / opt.Cost
			if ratio < 1-1e-9 {
				t.Fatalf("trial %d %s: cost %v below optimum %v", trial, s.name, sol.Cost, opt.Cost)
			}
			if ratio > worst[s.name] {
				worst[s.name] = ratio
			}
		}
	}
	// All three have constant-factor guarantees; on these small geometric
	// instances they should be far better than their worst cases.
	bounds := map[string]float64{"greedy": 1.7, "localsearch": 1.35, "jms": 2.0}
	for name, bound := range bounds {
		if worst[name] > bound {
			t.Errorf("%s worst ratio %.3f exceeds empirical bound %.2f", name, worst[name], bound)
		}
	}
	t.Logf("worst ratios: %v", worst)
}

func TestExactSmallHandChecked(t *testing.T) {
	// Two facilities, three clients. Opening both is optimal.
	in := &Instance{
		OpenCost: []float64{1, 1},
		ConnCost: [][]float64{
			{0, 0, 10},
			{10, 10, 0},
		},
	}
	opt, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost != 2 {
		t.Fatalf("optimal cost = %v, want 2 (open both)", opt.Cost)
	}
	if len(opt.Open) != 2 {
		t.Fatalf("open = %v, want both facilities", opt.Open)
	}

	// Expensive second facility: open only the first.
	in.OpenCost[1] = 100
	opt, err = Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Open) != 1 || opt.Open[0] != 0 {
		t.Fatalf("open = %v, want [0]", opt.Open)
	}
	if opt.Cost != 1+0+0+10 {
		t.Fatalf("cost = %v, want 11", opt.Cost)
	}
}

func TestInfiniteOpenCostAvoided(t *testing.T) {
	// Facility 0 is full (FDC = +Inf per eq. 1); everything must go to 1.
	in := &Instance{
		OpenCost: []float64{math.Inf(1), 5},
		ConnCost: [][]float64{
			{0, 0},
			{1, 1},
		},
	}
	for _, s := range solvers() {
		sol, err := s.fn(in)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		for _, i := range sol.Open {
			if i == 0 {
				t.Fatalf("%s opened the infinite-cost facility", s.name)
			}
		}
	}
}

func TestAllInfiniteFallsBack(t *testing.T) {
	in := &Instance{
		OpenCost: []float64{math.Inf(1), math.Inf(1)},
		ConnCost: [][]float64{
			{5, 5},
			{1, 1},
		},
	}
	for _, s := range solvers() {
		sol, err := s.fn(in)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if len(sol.Open) != 1 || sol.Open[0] != 1 {
			t.Fatalf("%s: open = %v, want fallback [1]", s.name, sol.Open)
		}
	}
}

func TestZeroOpenCostsOpenFreely(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 6, 10, 0)
	opt, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	// With free facilities, the optimum is every client at its nearest
	// facility.
	want := 0.0
	for j := 0; j < in.NClients(); j++ {
		best := math.Inf(1)
		for i := 0; i < in.NFacilities(); i++ {
			best = math.Min(best, in.ConnCost[i][j])
		}
		want += best
	}
	if math.Abs(opt.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", opt.Cost, want)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Instance{
		{},
		{OpenCost: []float64{1}, ConnCost: nil},
		{OpenCost: []float64{1, 2}, ConnCost: [][]float64{{1}, {1, 2}}},
		{OpenCost: []float64{-1}, ConnCost: [][]float64{{1}}},
		{OpenCost: []float64{math.NaN()}, ConnCost: [][]float64{{1}}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("instance %d validated", i)
		}
	}
}

func TestVerifyCatchesBadSolutions(t *testing.T) {
	in := &Instance{
		OpenCost: []float64{1, 1},
		ConnCost: [][]float64{{0, 1}, {1, 0}},
	}
	good, err := Exact(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Verify(in); err != nil {
		t.Fatal(err)
	}
	cases := map[string]*Solution{
		"no open":       {Open: nil, Assign: []int{0, 0}, Cost: 0},
		"closed assign": {Open: []int{0}, Assign: []int{0, 1}, Cost: 2},
		"out of range":  {Open: []int{5}, Assign: []int{5, 5}, Cost: 0},
		"cost mismatch": {Open: good.Open, Assign: good.Assign, Cost: good.Cost + 5},
		"wrong arity":   {Open: good.Open, Assign: good.Assign[:1], Cost: good.Cost},
	}
	for name, sol := range cases {
		if err := sol.Verify(in); err == nil {
			t.Errorf("%s verified", name)
		}
	}
}

func TestExactRefusesLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(rng, MaxExactFacilities+1, 3, 10)
	if _, err := Exact(in); err == nil {
		t.Fatal("Exact accepted an oversized instance")
	}
}

func TestGreedyDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 8, 20, 30)
	a, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Greedy(in)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || len(a.Open) != len(b.Open) {
		t.Fatal("greedy not deterministic")
	}
	for i := range a.Open {
		if a.Open[i] != b.Open[i] {
			t.Fatal("greedy open sets differ between runs")
		}
	}
}

func TestLocalSearchNeverWorseThanStart(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		in := randomInstance(rng, 3+rng.Intn(7), 3+rng.Intn(12), 60)
		start, err := Greedy(in)
		if err != nil {
			t.Fatal(err)
		}
		polished, err := LocalSearch(in, start)
		if err != nil {
			t.Fatal(err)
		}
		if polished.Cost > start.Cost+1e-9 {
			t.Fatalf("trial %d: local search worsened %v -> %v", trial, start.Cost, polished.Cost)
		}
	}
}

func TestSingleFacilitySingleClient(t *testing.T) {
	in := &Instance{OpenCost: []float64{3}, ConnCost: [][]float64{{2}}}
	for _, s := range solvers() {
		sol, err := s.fn(in)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if sol.Cost != 5 {
			t.Fatalf("%s: cost = %v, want 5", s.name, sol.Cost)
		}
	}
}

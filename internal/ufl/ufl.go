// Package ufl solves the Uncapacitated Facility Location problem that the
// storage-allocation formulation of Section IV-A3 reduces to.
//
// For each data item the paper minimizes
//
//	A·Σ f_i·y_i + Σ Σ c_ij·x_ij   s.t. every client j is assigned a facility
//
// where f_i is the Fairness Degree Cost of node i (opening cost) and c_ij
// the Range-Distance Cost (connection cost). UFL is NP-hard; the paper
// points at approximation algorithms (Li's 1.488). This package provides:
//
//   - Greedy: Hochbaum's greedy with best cost-effectiveness ratio,
//     the workhorse used by the allocation layer (ln n approximation,
//     excellent in practice on these small geometric instances).
//   - LocalSearch: add/drop/swap local search (3-approximation), used to
//     polish greedy solutions.
//   - JMS: Jain–Mahdian–Saberi style primal–dual dual-fitting.
//   - Exact: bitmask brute force for ≤ 20 facilities, the ground truth in
//     tests and ablations.
package ufl

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Instance is a UFL instance. Facilities and clients are separate index
// spaces; in the paper they are both the node set V.
type Instance struct {
	// OpenCost[i] is the cost of opening facility i. May be +Inf for
	// facilities that must not open (e.g. nodes with no storage left).
	OpenCost []float64
	// ConnCost[i][j] is the cost of serving client j from facility i.
	ConnCost [][]float64
}

// NFacilities returns the number of candidate facilities.
func (in *Instance) NFacilities() int { return len(in.OpenCost) }

// NClients returns the number of clients.
func (in *Instance) NClients() int {
	if len(in.ConnCost) == 0 {
		return 0
	}
	return len(in.ConnCost[0])
}

// Validate checks structural consistency.
func (in *Instance) Validate() error {
	if len(in.OpenCost) == 0 {
		return errors.New("ufl: no facilities")
	}
	if len(in.ConnCost) != len(in.OpenCost) {
		return fmt.Errorf("ufl: %d connection rows for %d facilities", len(in.ConnCost), len(in.OpenCost))
	}
	nc := in.NClients()
	for i, row := range in.ConnCost {
		if len(row) != nc {
			return fmt.Errorf("ufl: row %d has %d clients, want %d", i, len(row), nc)
		}
	}
	for i, f := range in.OpenCost {
		if f < 0 || math.IsNaN(f) {
			return fmt.Errorf("ufl: facility %d has invalid open cost %v", i, f)
		}
	}
	return nil
}

// Solution is an assignment of every client to one open facility.
type Solution struct {
	// Open lists open facility indices in ascending order.
	Open []int
	// Assign[j] is the open facility serving client j.
	Assign []int
	// Cost is the total open + connection cost.
	Cost float64
}

// Verify checks that the solution is feasible for the instance and that
// Cost is consistent.
func (s *Solution) Verify(in *Instance) error {
	if len(s.Open) == 0 {
		return errors.New("ufl: no open facilities")
	}
	open := make(map[int]bool, len(s.Open))
	for _, i := range s.Open {
		if i < 0 || i >= in.NFacilities() {
			return fmt.Errorf("ufl: open facility %d out of range", i)
		}
		open[i] = true
	}
	if len(s.Assign) != in.NClients() {
		return fmt.Errorf("ufl: %d assignments for %d clients", len(s.Assign), in.NClients())
	}
	for j, i := range s.Assign {
		if !open[i] {
			return fmt.Errorf("ufl: client %d assigned to closed facility %d", j, i)
		}
	}
	want := CostOf(in, s.Open, s.Assign)
	if math.Abs(want-s.Cost) > 1e-6*(1+math.Abs(want)) {
		return fmt.Errorf("ufl: cost %v inconsistent with assignment cost %v", s.Cost, want)
	}
	return nil
}

// CostOf computes the total cost of opening the given facilities with the
// given assignment.
func CostOf(in *Instance, open []int, assign []int) float64 {
	total := 0.0
	for _, i := range open {
		total += in.OpenCost[i]
	}
	for j, i := range assign {
		total += in.ConnCost[i][j]
	}
	return total
}

// assignBest maps every client to its cheapest facility among open, and
// returns the assignment plus total connection cost.
func assignBest(in *Instance, open []int) ([]int, float64) {
	nc := in.NClients()
	assign := make([]int, nc)
	total := 0.0
	for j := 0; j < nc; j++ {
		best, bestCost := -1, math.Inf(1)
		for _, i := range open {
			if c := in.ConnCost[i][j]; c < bestCost {
				best, bestCost = i, c
			}
		}
		assign[j] = best
		total += bestCost
	}
	return assign, total
}

func solutionFor(in *Instance, openSet map[int]bool) *Solution {
	open := make([]int, 0, len(openSet))
	for i := range openSet {
		open = append(open, i)
	}
	sort.Ints(open)
	assign, conn := assignBest(in, open)
	total := conn
	for _, i := range open {
		total += in.OpenCost[i]
	}
	return &Solution{Open: open, Assign: assign, Cost: total}
}

// finiteOrFallback ensures at least one facility is openable: if every open
// cost is +Inf the caller still must store the data somewhere, so the
// facility with the cheapest connection total is used as a last resort.
func cheapestFallback(in *Instance) int {
	best, bestCost := 0, math.Inf(1)
	for i := range in.OpenCost {
		total := 0.0
		for j := 0; j < in.NClients(); j++ {
			total += in.ConnCost[i][j]
		}
		if total < bestCost {
			best, bestCost = i, total
		}
	}
	return best
}

// Greedy solves the instance with Hochbaum's greedy algorithm: repeatedly
// open (or reuse) the facility whose next batch of clients has the best
// (cost / clients served) ratio, until every client is assigned.
func Greedy(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nf, nc := in.NFacilities(), in.NClients()
	if nc == 0 {
		return nil, errors.New("ufl: no clients")
	}
	openSet := make(map[int]bool)
	assigned := make([]bool, nc)
	remaining := nc

	// ordered[i] lists clients sorted by connection cost to facility i.
	ordered := make([][]int, nf)
	for i := 0; i < nf; i++ {
		idx := make([]int, nc)
		for j := range idx {
			idx[j] = j
		}
		row := in.ConnCost[i]
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] < row[idx[b]] })
		ordered[i] = idx
	}

	var batch, bestBatch []int
	for remaining > 0 {
		bestRatio := math.Inf(1)
		bestFac := -1
		bestBatch = bestBatch[:0]
		for i := 0; i < nf; i++ {
			openCost := in.OpenCost[i]
			if openSet[i] {
				openCost = 0
			}
			if math.IsInf(openCost, 1) {
				continue
			}
			// Best prefix of unassigned clients by cost ratio: since the
			// clients are sorted by connection cost, the optimal batch for
			// this facility is some prefix of the unassigned ones. Ties go
			// to the LONGER prefix (<=, cross-multiplied to avoid float
			// division): on plateaus of equal connection cost — ubiquitous
			// in hop-count instances, where an open facility serves any
			// remaining client at the same cost — a shortest-prefix rule
			// assigns one client per pass and turns the whole solve
			// quadratic in the client count.
			sum := openCost
			count := 0
			batch = batch[:0]
			bsum := 0.0
			bcount := 0
			for _, j := range ordered[i] {
				if assigned[j] {
					continue
				}
				sum += in.ConnCost[i][j]
				count++
				batch = append(batch, j)
				if bcount == 0 || sum*float64(bcount) <= bsum*float64(count) {
					bsum, bcount = sum, count
				}
			}
			if bcount == 0 {
				continue
			}
			if ratio := bsum / float64(bcount); ratio < bestRatio {
				bestRatio = ratio
				bestFac = i
				bestBatch = append(bestBatch[:0], batch[:bcount]...)
			}
		}
		if bestFac < 0 {
			// All facilities are unopenable (+Inf): force the fallback.
			f := cheapestFallback(in)
			openSet[f] = true
			for j := 0; j < nc; j++ {
				if !assigned[j] {
					assigned[j] = true
					remaining--
				}
			}
			break
		}
		openSet[bestFac] = true
		for _, j := range bestBatch {
			assigned[j] = true
			remaining--
		}
	}
	return solutionFor(in, openSet), nil
}

// LocalSearch improves a starting solution (or greedy if start is nil) with
// add / drop / swap moves until no single move lowers the cost. The scale
// parameter of the classic analysis is unnecessary at these sizes.
func LocalSearch(in *Instance, start *Solution) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if start == nil {
		var err error
		start, err = Greedy(in)
		if err != nil {
			return nil, err
		}
	}
	openSet := make(map[int]bool, len(start.Open))
	for _, i := range start.Open {
		openSet[i] = true
	}
	cur := solutionFor(in, openSet)
	improved := true
	for improved {
		improved = false
		// Add moves.
		for i := 0; i < in.NFacilities(); i++ {
			if openSet[i] || math.IsInf(in.OpenCost[i], 1) {
				continue
			}
			openSet[i] = true
			if cand := solutionFor(in, openSet); cand.Cost < cur.Cost-1e-12 {
				cur = cand
				improved = true
			} else {
				delete(openSet, i)
			}
		}
		// Drop moves.
		if len(openSet) > 1 {
			for i := range openSet {
				delete(openSet, i)
				if cand := solutionFor(in, openSet); cand.Cost < cur.Cost-1e-12 {
					cur = cand
					improved = true
				} else {
					openSet[i] = true
				}
				if len(openSet) == 1 {
					break
				}
			}
		}
		// Swap moves.
		for out := range openSet {
			swapped := false
			for i := 0; i < in.NFacilities(); i++ {
				if openSet[i] || math.IsInf(in.OpenCost[i], 1) {
					continue
				}
				delete(openSet, out)
				openSet[i] = true
				if cand := solutionFor(in, openSet); cand.Cost < cur.Cost-1e-12 {
					cur = cand
					improved = true
					swapped = true
					break
				}
				delete(openSet, i)
				openSet[out] = true
			}
			if swapped {
				break
			}
		}
	}
	return cur, nil
}

// Exact solves the instance optimally by enumerating facility subsets. It
// refuses instances with more than MaxExactFacilities facilities.
const MaxExactFacilities = 20

// Exact returns the optimal solution by brute force.
func Exact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nf := in.NFacilities()
	if nf > MaxExactFacilities {
		return nil, fmt.Errorf("ufl: exact solver limited to %d facilities, got %d", MaxExactFacilities, nf)
	}
	var best *Solution
	for mask := 1; mask < 1<<nf; mask++ {
		openCost := 0.0
		open := make([]int, 0, nf)
		for i := 0; i < nf; i++ {
			if mask&(1<<i) != 0 {
				openCost += in.OpenCost[i]
				open = append(open, i)
			}
		}
		if best != nil && openCost >= best.Cost {
			continue
		}
		assign, conn := assignBest(in, open)
		total := openCost + conn
		if best == nil || total < best.Cost {
			best = &Solution{Open: open, Assign: assign, Cost: total}
		}
	}
	if best == nil {
		return nil, errors.New("ufl: no feasible solution")
	}
	return best, nil
}

package ufl

import (
	"math/rand"
	"testing"
)

func benchInstance(b *testing.B, nf, nc int) *Instance {
	b.Helper()
	return randomInstance(rand.New(rand.NewSource(1)), nf, nc, 50)
}

func BenchmarkGreedy50(b *testing.B) {
	in := benchInstance(b, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalSearch50(b *testing.B) {
	in := benchInstance(b, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LocalSearch(in, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJMS50(b *testing.B) {
	in := benchInstance(b, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JMS(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExact16(b *testing.B) {
	in := benchInstance(b, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(in); err != nil {
			b.Fatal(err)
		}
	}
}

package ufl

import (
	"math"
	"sort"
)

// JMS solves the instance with a Jain–Mahdian–Saberi style primal–dual
// dual-fitting algorithm: every unconnected client j raises its dual α_j at
// unit rate; facility i opens when the accumulated offers
// Σ_j max(0, α_j − c_ij) reach its opening cost; a client freezes as soon
// as its α reaches its connection cost to an open facility.
//
// This is the non-reassigning variant (factor 1.861); the paper cites the
// family of UFL approximations (down to Li's 1.488) as applicable, and the
// ablation bench compares this solver against Greedy, LocalSearch and the
// exact optimum.
func JMS(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	nf, nc := in.NFacilities(), in.NClients()
	openSet := make(map[int]bool)
	connected := make([]bool, nc)
	remaining := nc

	alpha := make([]float64, nc)
	// For efficiency at these sizes we advance time in discrete events.
	// Candidate event times for the current state:
	//   (a) an active client's alpha reaches c_ij for an open facility i;
	//   (b) a closed facility's offers reach its opening cost.
	const eps = 1e-9
	t := 0.0
	for remaining > 0 {
		// Next event (a): min over active clients j and open facilities i of
		// c_ij (alpha_j grows to c_ij at absolute time c_ij since all active
		// alphas equal t).
		nextA := math.Inf(1)
		for j := 0; j < nc; j++ {
			if connected[j] {
				continue
			}
			for i := range openSet {
				if c := in.ConnCost[i][j]; c < nextA && c >= t-eps {
					nextA = math.Max(c, t)
				}
			}
		}
		// Next event (b): for each closed facility, solve for the time t' at
		// which Σ_{j active} max(0, t' − c_ij) + Σ_{j frozen} max(0, α_j − c_ij)
		// equals f_i. The left side is piecewise linear in t'.
		nextB := math.Inf(1)
		bestFac := -1
		for i := 0; i < nf; i++ {
			if openSet[i] || math.IsInf(in.OpenCost[i], 1) {
				continue
			}
			if tb := facilityOpenTime(in, i, alpha, connected, t); tb < nextB {
				nextB = tb
				bestFac = i
			}
		}
		if math.IsInf(nextA, 1) && math.IsInf(nextB, 1) {
			// No finite-cost facility can ever open: force fallback.
			f := cheapestFallback(in)
			openSet[f] = true
			for j := range connected {
				if !connected[j] {
					connected[j] = true
					remaining--
				}
			}
			break
		}
		if nextA <= nextB {
			t = nextA
			// Freeze every active client whose cost to some open facility
			// is ≤ t.
			for j := 0; j < nc; j++ {
				if connected[j] {
					continue
				}
				alpha[j] = t
				for i := range openSet {
					if in.ConnCost[i][j] <= t+eps {
						connected[j] = true
						remaining--
						break
					}
				}
			}
		} else {
			t = nextB
			openSet[bestFac] = true
			for j := 0; j < nc; j++ {
				if connected[j] {
					continue
				}
				alpha[j] = t
				if in.ConnCost[bestFac][j] <= t+eps {
					connected[j] = true
					remaining--
				}
			}
		}
	}
	return solutionFor(in, openSet), nil
}

// facilityOpenTime returns the earliest absolute time ≥ now at which the
// offers to facility i cover its opening cost, or +Inf if impossible (all
// contributing clients frozen and their fixed offers insufficient).
func facilityOpenTime(in *Instance, i int, alpha []float64, connected []bool, now float64) float64 {
	f := in.OpenCost[i]
	// Fixed contribution from frozen clients.
	fixed := 0.0
	var activeCosts []float64
	for j := range alpha {
		c := in.ConnCost[i][j]
		if connected[j] {
			if alpha[j] > c {
				fixed += alpha[j] - c
			}
		} else {
			activeCosts = append(activeCosts, c)
		}
	}
	if fixed >= f {
		return now
	}
	if len(activeCosts) == 0 {
		return math.Inf(1)
	}
	sort.Float64s(activeCosts)
	// With k active clients contributing (those with c ≤ t'), total offer is
	// fixed + Σ_{c_l ≤ t'} (t' − c_l). Scan breakpoints.
	sum := 0.0
	for k := 1; k <= len(activeCosts); k++ {
		sum += activeCosts[k-1]
		// Candidate t' with exactly the first k costs active:
		tp := (f - fixed + sum) / float64(k)
		lo := math.Max(activeCosts[k-1], now)
		hi := math.Inf(1)
		if k < len(activeCosts) {
			hi = activeCosts[k]
		}
		if tp >= lo-1e-12 && tp <= hi+1e-12 {
			return math.Max(tp, now)
		}
	}
	return math.Inf(1)
}

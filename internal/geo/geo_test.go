package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, 0}, Point{0, 4}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	prop := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a) && Dist(a, b) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldContainsAndClamp(t *testing.T) {
	f := DefaultField()
	if !f.Contains(Point{0, 0}) || !f.Contains(Point{300, 300}) {
		t.Error("field must contain corners")
	}
	if f.Contains(Point{-1, 10}) || f.Contains(Point{10, 301}) {
		t.Error("field must not contain outside points")
	}
	got := f.Clamp(Point{-50, 400})
	if got != (Point{0, 300}) {
		t.Errorf("Clamp = %v, want (0, 300)", got)
	}
}

func TestRandomPointInField(t *testing.T) {
	f := DefaultField()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if p := f.RandomPoint(rng); !f.Contains(p) {
			t.Fatalf("RandomPoint %v outside field", p)
		}
	}
}

func TestPlaceNodes(t *testing.T) {
	f := DefaultField()
	rng := rand.New(rand.NewSource(2))
	pl := PlaceNodes(f, 50, 30, rng)
	if len(pl) != 50 {
		t.Fatalf("got %d placements, want 50", len(pl))
	}
	for i, p := range pl {
		if !f.Contains(p.Home) {
			t.Errorf("node %d home %v outside field", i, p.Home)
		}
		if p.Range != 30 {
			t.Errorf("node %d range = %v, want 30", i, p.Range)
		}
	}
}

func TestRandomOffsetWithinRange(t *testing.T) {
	f := DefaultField()
	rng := rand.New(rand.NewSource(3))
	pl := Placement{Home: Point{150, 150}, Range: 30}
	for i := 0; i < 1000; i++ {
		p := pl.RandomOffset(f, rng)
		if d := Dist(pl.Home, p); d > 30+1e-9 {
			t.Fatalf("offset %v at distance %v > range 30", p, d)
		}
	}
}

func TestRandomOffsetClampedToField(t *testing.T) {
	f := DefaultField()
	rng := rand.New(rand.NewSource(4))
	pl := Placement{Home: Point{0, 0}, Range: 50}
	for i := 0; i < 1000; i++ {
		if p := pl.RandomOffset(f, rng); !f.Contains(p) {
			t.Fatalf("offset %v outside field", p)
		}
	}
}

func TestPlaceNodesConnected(t *testing.T) {
	f := DefaultField()
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{10, 20, 30, 50} {
		pl, err := PlaceNodesConnected(f, n, 30, 70, rng, 500)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !layoutConnected(pl, 70) {
			t.Fatalf("n=%d: returned layout not connected", n)
		}
	}
}

func TestPlaceNodesConnectedTrivialCases(t *testing.T) {
	f := DefaultField()
	rng := rand.New(rand.NewSource(6))
	if pl, err := PlaceNodesConnected(f, 0, 30, 70, rng, 10); err != nil || len(pl) != 0 {
		t.Fatalf("n=0: pl=%v err=%v", pl, err)
	}
	if pl, err := PlaceNodesConnected(f, 1, 30, 70, rng, 10); err != nil || len(pl) != 1 {
		t.Fatalf("n=1: pl=%v err=%v", pl, err)
	}
}

func TestPlaceNodesConnectedImpossible(t *testing.T) {
	// Zero radio range can never connect more than one node.
	f := Field{Width: 1e6, Height: 1e6}
	rng := rand.New(rand.NewSource(7))
	if _, err := PlaceNodesConnected(f, 5, 0, 0, rng, 5); err == nil {
		t.Fatal("expected error for zero comm range")
	}
}

func TestPlaceNodesConnectedSparse(t *testing.T) {
	// The growth fallback must connect even extremely sparse densities.
	f := Field{Width: 1e5, Height: 1e5}
	rng := rand.New(rand.NewSource(8))
	pl, err := PlaceNodesConnected(f, 20, 5, 50, rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !layoutConnected(pl, 50) {
		t.Fatal("sparse layout not connected")
	}
}

func TestLayoutConnectedDisconnected(t *testing.T) {
	pl := []Placement{
		{Home: Point{0, 0}},
		{Home: Point{10, 0}},
		{Home: Point{1000, 0}},
	}
	if layoutConnected(pl, 70) {
		t.Fatal("layout with isolated node reported connected")
	}
	if !layoutConnected(pl[:2], 70) {
		t.Fatal("close pair reported disconnected")
	}
}

// Package geo models the 2-D geometry of the edge environment: node
// positions inside a rectangular field, mobility ranges, and distances.
//
// The paper places nodes uniformly in a 300 m x 300 m area with a 70 m
// radio range and a 30 m mobility range (Section VI). A node's mobility
// range is the radius within which it wanders in the short term; the
// Range-Distance Cost of Section IV-A2 adds both endpoints' ranges to the
// inter-node distance to account for this movement.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a position in meters.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points in meters.
func Dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Field is a rectangular deployment area.
type Field struct {
	Width, Height float64
}

// DefaultField is the paper's 300 m x 300 m simulation area.
func DefaultField() Field { return Field{Width: 300, Height: 300} }

// Contains reports whether p lies inside the field (inclusive).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}

// Clamp returns p constrained to the field boundary.
func (f Field) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), f.Width),
		Y: math.Min(math.Max(p.Y, 0), f.Height),
	}
}

// RandomPoint returns a uniformly distributed point inside the field.
func (f Field) RandomPoint(rng *rand.Rand) Point {
	return Point{X: rng.Float64() * f.Width, Y: rng.Float64() * f.Height}
}

// Placement describes one node's home position and mobility range.
type Placement struct {
	Home Point
	// Range is the mobility radius in meters: the node wanders within
	// this distance of Home in the short term.
	Range float64
}

// RandomOffset returns a position uniformly distributed inside the node's
// mobility disc, clamped to the field.
func (pl Placement) RandomOffset(f Field, rng *rand.Rand) Point {
	// Uniform over the disc: r = R*sqrt(u), theta uniform.
	r := pl.Range * math.Sqrt(rng.Float64())
	theta := rng.Float64() * 2 * math.Pi
	return f.Clamp(Point{
		X: pl.Home.X + r*math.Cos(theta),
		Y: pl.Home.Y + r*math.Sin(theta),
	})
}

// PlaceNodes places n nodes uniformly at random in the field, each with the
// given mobility range. The slice index is the node ID used by higher
// layers.
func PlaceNodes(f Field, n int, mobilityRange float64, rng *rand.Rand) []Placement {
	if n < 0 {
		panic("geo: negative node count")
	}
	out := make([]Placement, n)
	for i := range out {
		out[i] = Placement{Home: f.RandomPoint(rng), Range: mobilityRange}
	}
	return out
}

// PlaceNodesConnected places nodes randomly such that the radio graph at
// commRange is connected (every node reaches every other over multi-hop
// paths). Purely uniform layouts are almost never connected at the paper's
// density (10 nodes, 70 m range in 300 m x 300 m), so after trying a few
// uniform layouts this uses connected growth: each node samples uniform
// positions until one lands within radio range of the already-placed
// component, falling back to a position inside a random placed node's
// radio disc. The result stays spread over the field but is connected by
// construction, which the multi-hop protocol evaluation requires.
func PlaceNodesConnected(f Field, n int, mobilityRange, commRange float64, rng *rand.Rand, maxAttempts int) ([]Placement, error) {
	if maxAttempts <= 0 {
		maxAttempts = 100
	}
	if commRange <= 0 && n > 1 {
		return PlaceNodes(f, n, mobilityRange, rng), fmt.Errorf("geo: no connected layout possible with commRange %.1f", commRange)
	}
	// A handful of fully uniform tries keeps high-density layouts unbiased.
	for attempt := 0; attempt < min(maxAttempts, 25); attempt++ {
		layout := PlaceNodes(f, n, mobilityRange, rng)
		if layoutConnected(layout, commRange) {
			return layout, nil
		}
	}
	// Connected growth.
	out := make([]Placement, 0, n)
	if n == 0 {
		return out, nil
	}
	out = append(out, Placement{Home: f.RandomPoint(rng), Range: mobilityRange})
	const triesPerNode = 200
	for len(out) < n {
		placed := false
		for try := 0; try < triesPerNode; try++ {
			p := f.RandomPoint(rng)
			for _, q := range out {
				if Dist(p, q.Home) <= commRange {
					out = append(out, Placement{Home: p, Range: mobilityRange})
					placed = true
					break
				}
			}
			if placed {
				break
			}
		}
		if !placed {
			// Force a position inside a random placed node's radio disc.
			anchor := out[rng.Intn(len(out))]
			p := Placement{Home: anchor.Home, Range: commRange}.RandomOffset(f, rng)
			out = append(out, Placement{Home: p, Range: mobilityRange})
		}
	}
	if !layoutConnected(out, commRange) {
		return out, fmt.Errorf("geo: growth layout unexpectedly disconnected for n=%d", n)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// layoutConnected checks radio-graph connectivity with a BFS over home
// positions.
func layoutConnected(pl []Placement, commRange float64) bool {
	n := len(pl)
	if n <= 1 {
		return true
	}
	visited := make([]bool, n)
	queue := []int{0}
	visited[0] = true
	seen := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			if !visited[v] && Dist(pl[u].Home, pl[v].Home) <= commRange {
				visited[v] = true
				seen++
				queue = append(queue, v)
			}
		}
	}
	return seen == n
}

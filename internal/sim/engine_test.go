package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	delays := []time.Duration{5 * time.Second, time.Second, 3 * time.Second, 2 * time.Second}
	for _, d := range delays {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := append([]time.Duration(nil), delays...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-time events must run FIFO)", i, v, i)
		}
	}
}

func TestEngineHorizonLeavesFutureEventsQueued(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(time.Second, func() { ran++ })
	e.Schedule(10*time.Second, func() { ran++ })
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want clock advanced to horizon 5s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ran != 2 || e.Now() != 10*time.Second {
		t.Fatalf("after RunAll: ran=%d now=%v", ran, e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Schedule(time.Second, func() {
		times = append(times, e.Now())
		e.Schedule(2*time.Second, func() {
			times = append(times, e.Now())
		})
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(times) != 2 || times[0] != time.Second || times[1] != 3*time.Second {
		t.Fatalf("times = %v, want [1s 3s]", times)
	}
}

func TestEngineNegativeDelayRunsNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		e.Schedule(-5*time.Second, func() {
			if e.Now() != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", e.Now())
			}
		})
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.Schedule(time.Second, func() { fired = true })
	if !timer.Stop() {
		t.Fatal("Stop returned false for a pending timer")
	}
	if timer.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestEngineStopAbortsRun(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(time.Second, func() { ran++; e.Stop() })
	e.Schedule(2*time.Second, func() { ran++ })
	err := e.RunAll()
	if err != ErrStopped {
		t.Fatalf("RunAll err = %v, want ErrStopped", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(2*time.Second, func() {
		e.ScheduleAt(7*time.Second, func() { at = e.Now() })
	})
	if err := e.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if at != 7*time.Second {
		t.Fatalf("absolute event at %v, want 7s", at)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(time.Second, func() { n++ })
	e.Schedule(2*time.Second, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var fires []time.Duration
	var tk *Ticker
	tk = NewTicker(e, 10*time.Second, func() {
		fires = append(fires, e.Now())
		if len(fires) == 3 {
			tk.Stop()
		}
	})
	if err := e.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestTickerReset(t *testing.T) {
	e := NewEngine()
	var fires []time.Duration
	tk := NewTicker(e, 10*time.Second, func() { fires = append(fires, e.Now()) })
	e.Schedule(5*time.Second, func() { tk.Reset(time.Second) })
	// The stop event at 8s was scheduled before the ticker re-armed for 8s,
	// so FIFO tie-breaking runs it first and the 8s tick is canceled.
	e.Schedule(8*time.Second, func() { tk.Stop() })
	if err := e.Run(time.Minute); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []time.Duration{6 * time.Second, 7 * time.Second}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
}

// Property: for any set of non-negative delays, events fire in sorted order
// and the clock never goes backwards.
func TestEngineOrderingProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, r := range raw {
			d := time.Duration(r) * time.Millisecond
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a run is deterministic — executing the same randomized schedule
// twice yields identical event sequences.
func TestEngineDeterminismProperty(t *testing.T) {
	run := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var fired []time.Duration
		var schedule func(depth int)
		schedule = func(depth int) {
			n := rng.Intn(5)
			for i := 0; i < n; i++ {
				d := time.Duration(rng.Intn(1000)) * time.Millisecond
				e.Schedule(d, func() {
					fired = append(fired, e.Now())
					if depth < 3 {
						schedule(depth + 1)
					}
				})
			}
		}
		schedule(0)
		if err := e.Run(time.Hour); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return fired
	}
	for seed := int64(1); seed <= 20; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: event %d differs: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

package sim

import "time"

// Ticker repeatedly invokes a callback at a fixed virtual-time period until
// stopped. It is the simulated analogue of time.Ticker and is used for
// heartbeats and periodic maintenance in higher layers.
type Ticker struct {
	engine  *Engine
	period  time.Duration
	fn      func()
	pending *Timer
	stopped bool
}

// NewTicker schedules fn every period, with the first firing one period from
// now. It panics if period is not positive.
func NewTicker(e *Engine, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.pending = t.engine.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future firings. It is safe to call multiple times and from
// within the ticker callback itself.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Stop()
	}
}

// Reset restarts the ticker with a new period, canceling the pending firing.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if t.pending != nil {
		t.pending.Stop()
	}
	t.period = period
	t.stopped = false
	t.arm()
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulated components share a single Engine that owns the virtual
// clock. Events are executed in (time, sequence) order, so two runs of the
// same program with the same seeds produce bit-identical schedules. The
// engine is intentionally single-threaded: handlers run on the caller's
// goroutine during Run, which keeps the whole simulation free of data races
// without any locking in simulated components.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrStopped is returned by Run when the engine was stopped explicitly
// before reaching the run horizon.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. Events are ordered by At, with Seq breaking
// ties in scheduling order.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	// canceled marks timer events that were stopped before firing.
	canceled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler with a virtual clock.
// The zero value is ready to use.
type Engine struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	stopped bool
	// processed counts events executed by Run; useful in tests and for
	// detecting runaway simulations.
	processed uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued (including
// canceled timers that have not yet been drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Timer identifies a scheduled event that can be stopped before it fires.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e. the callback will not run). Stopping an already-fired or
// already-stopped timer is a no-op.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.fn == nil {
		return false
	}
	t.ev.canceled = true
	t.ev.fn = nil
	return true
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero: the event fires at the current time but after all events already
// scheduled for that time.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	ev := &event{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) *Timer {
	return e.Schedule(at-e.now, fn)
}

// Stop aborts a Run in progress (or makes the next Run return immediately).
func (e *Engine) Stop() { e.stopped = true }

// Run executes queued events until the queue is empty or virtual time would
// exceed until. Events scheduled exactly at until are executed. It returns
// ErrStopped if Stop was called, otherwise nil.
func (e *Engine) Run(until time.Duration) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		next := e.queue[0]
		if next.at > until {
			// Do not pop: leave future events queued, advance clock to horizon.
			e.now = until
			return nil
		}
		heap.Pop(&e.queue)
		if next.canceled {
			continue
		}
		if next.at < e.now {
			// Impossible by construction; guard against heap corruption.
			panic(fmt.Sprintf("sim: time went backwards: %v < %v", next.at, e.now))
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.processed++
		fn()
	}
	if until > e.now && until != math.MaxInt64 {
		e.now = until
	}
	return nil
}

// RunAll executes events until the queue drains, with no time horizon.
func (e *Engine) RunAll() error { return e.Run(math.MaxInt64) }

// Step executes exactly one pending event (skipping canceled timers) and
// reports whether an event was executed.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		next := heap.Pop(&e.queue).(*event)
		if next.canceled {
			continue
		}
		e.now = next.at
		fn := next.fn
		next.fn = nil
		e.processed++
		fn()
		return true
	}
	return false
}

package identity

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateAndSignVerify(t *testing.T) {
	id, err := Generate(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("metadata item payload")
	sig := id.Sign(msg)
	if err := Verify(id.PublicKey(), id.Address(), msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	id := GenerateSeeded(mrand.New(mrand.NewSource(1)))
	msg := []byte("original")
	sig := id.Sign(msg)
	if err := Verify(id.PublicKey(), id.Address(), []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message verified")
	}
}

func TestVerifyRejectsWrongAddress(t *testing.T) {
	rng := mrand.New(mrand.NewSource(2))
	a, b := GenerateSeeded(rng), GenerateSeeded(rng)
	msg := []byte("payload")
	sig := a.Sign(msg)
	if err := Verify(a.PublicKey(), b.Address(), msg, sig); err == nil {
		t.Fatal("signature verified against mismatched address")
	}
}

func TestVerifyRejectsShortKey(t *testing.T) {
	id := GenerateSeeded(mrand.New(mrand.NewSource(3)))
	if err := Verify(id.PublicKey()[:10], id.Address(), []byte("x"), []byte("y")); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestGenerateSeededDeterministic(t *testing.T) {
	a := GenerateSeeded(mrand.New(mrand.NewSource(42)))
	b := GenerateSeeded(mrand.New(mrand.NewSource(42)))
	if a.Address() != b.Address() {
		t.Fatal("same seed produced different identities")
	}
	c := GenerateSeeded(mrand.New(mrand.NewSource(43)))
	if a.Address() == c.Address() {
		t.Fatal("different seeds produced identical identities")
	}
}

func TestAddressRoundTrip(t *testing.T) {
	id := GenerateSeeded(mrand.New(mrand.NewSource(4)))
	addr := id.Address()
	parsed, err := ParseAddress(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != addr {
		t.Fatal("address did not round-trip through hex")
	}
}

func TestParseAddressErrors(t *testing.T) {
	if _, err := ParseAddress("zz"); err == nil {
		t.Fatal("invalid hex accepted")
	}
	if _, err := ParseAddress("abcd"); err == nil {
		t.Fatal("short address accepted")
	}
}

func TestAddressIsZeroAndShort(t *testing.T) {
	var zero Address
	if !zero.IsZero() {
		t.Fatal("zero address not IsZero")
	}
	id := GenerateSeeded(mrand.New(mrand.NewSource(5)))
	if id.Address().IsZero() {
		t.Fatal("real address IsZero")
	}
	if len(id.Address().Short()) != 8 {
		t.Fatalf("Short() = %q, want 8 hex chars", id.Address().Short())
	}
}

// Property: any message signed by an identity verifies, and flipping any
// byte of the signature fails verification.
func TestSignVerifyProperty(t *testing.T) {
	id := GenerateSeeded(mrand.New(mrand.NewSource(6)))
	prop := func(msg []byte, flipAt uint8) bool {
		sig := id.Sign(msg)
		if Verify(id.PublicKey(), id.Address(), msg, sig) != nil {
			return false
		}
		bad := append([]byte(nil), sig...)
		bad[int(flipAt)%len(bad)] ^= 0xff
		return Verify(id.PublicKey(), id.Address(), msg, bad) != nil
	}
	cfg := &quick.Config{MaxCount: 50, Rand: mrand.New(mrand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: addresses are uniformly spread (sanity: the top byte of many
// random addresses is not constant). Guards against accidentally hashing a
// constant instead of the key.
func TestAddressSpread(t *testing.T) {
	rng := mrand.New(mrand.NewSource(8))
	seen := make(map[byte]bool)
	for i := 0; i < 64; i++ {
		id := GenerateSeeded(rng)
		seen[id.Address()[0]] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct leading bytes in 64 addresses", len(seen))
	}
}

// Addresses interpreted as big integers should be usable as hash inputs in
// the PoS layer; ensure they are non-degenerate.
func TestAddressAsInteger(t *testing.T) {
	id := GenerateSeeded(mrand.New(mrand.NewSource(9)))
	addr := id.Address()
	n := new(big.Int).SetBytes(addr[:])
	if n.Sign() == 0 {
		t.Fatal("address integer is zero")
	}
}

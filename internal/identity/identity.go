// Package identity provides node key pairs and blockchain accounts.
//
// Per Section III-A, each node owns a private/public key pair used for
// identification; the account address is a hash derived from the public key
// ("the account address can be generated from public keys but not in
// reverse"). Signatures over metadata items let any node validate data
// integrity (Section III-B2).
package identity

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// AddressSize is the length of an account address in bytes (SHA-256).
const AddressSize = sha256.Size

// Address is a node's account address: SHA-256 of its public key.
type Address [AddressSize]byte

// String returns the hex form of the address.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// Short returns an abbreviated hex prefix for logs.
func (a Address) Short() string { return hex.EncodeToString(a[:4]) }

// IsZero reports whether the address is all zeros (no account).
func (a Address) IsZero() bool { return a == Address{} }

// ParseAddress decodes a full-length hex address.
func ParseAddress(s string) (Address, error) {
	var a Address
	b, err := hex.DecodeString(s)
	if err != nil {
		return a, fmt.Errorf("identity: parse address: %w", err)
	}
	if len(b) != AddressSize {
		return a, fmt.Errorf("identity: address must be %d bytes, got %d", AddressSize, len(b))
	}
	copy(a[:], b)
	return a, nil
}

// AddressOf derives the account address from a public key.
func AddressOf(pub ed25519.PublicKey) Address {
	return Address(sha256.Sum256(pub))
}

// Identity is a node's key pair plus derived account address.
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	addr Address
}

// ErrBadSignature is returned when signature verification fails.
var ErrBadSignature = errors.New("identity: bad signature")

// Generate creates a fresh identity from the given entropy source. Pass a
// seeded deterministic reader in simulations for reproducibility.
func Generate(entropy io.Reader) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("identity: generate key: %w", err)
	}
	return &Identity{pub: pub, priv: priv, addr: AddressOf(pub)}, nil
}

// GenerateSeeded creates a deterministic identity from a math/rand source.
// Only for simulations and tests; real deployments must use crypto/rand.
func GenerateSeeded(rng *rand.Rand) *Identity {
	seed := make([]byte, ed25519.SeedSize)
	for i := range seed {
		seed[i] = byte(rng.Intn(256))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	return &Identity{pub: pub, priv: priv, addr: AddressOf(pub)}
}

// Address returns the account address.
func (id *Identity) Address() Address { return id.addr }

// PublicKey returns the public key (shared in blocks so peers can verify
// producer signatures).
func (id *Identity) PublicKey() ed25519.PublicKey { return id.pub }

// Sign signs msg with the node's private key.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// Verify checks sig over msg against pub. It also confirms that pub hashes
// to the claimed address, binding the signature to the account.
func Verify(pub ed25519.PublicKey, addr Address, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("identity: public key must be %d bytes, got %d", ed25519.PublicKeySize, len(pub))
	}
	if AddressOf(pub) != addr {
		return fmt.Errorf("identity: public key does not match address %s", addr.Short())
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

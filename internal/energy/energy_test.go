package energy

import (
	"math"
	"testing"
)

func TestModelValidate(t *testing.T) {
	if err := GalaxyS8().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{CapacityJoules: 0, BasePowerWatts: 1, HashEnergyJoules: 1},
		{CapacityJoules: 1, BasePowerWatts: -1, HashEnergyJoules: 1},
		{CapacityJoules: 1, BasePowerWatts: 1, HashEnergyJoules: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d validated", i)
		}
	}
}

func TestBlockEnergy(t *testing.T) {
	m := Model{CapacityJoules: 1000, BasePowerWatts: 2, HashEnergyJoules: 0.001}
	got := m.BlockEnergy(10, 5000)
	want := 2.0*10 + 0.001*5000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BlockEnergy = %v, want %v", got, want)
	}
}

func TestBatteryDrain(t *testing.T) {
	b, err := NewBattery(Model{CapacityJoules: 100, BasePowerWatts: 1, HashEnergyJoules: 0})
	if err != nil {
		t.Fatal(err)
	}
	if b.RemainingPercent() != 100 {
		t.Fatalf("fresh battery at %v%%", b.RemainingPercent())
	}
	if !b.Drain(40) {
		t.Fatal("drain to 60% reported empty")
	}
	if b.RemainingPercent() != 60 {
		t.Fatalf("remaining %v%%, want 60", b.RemainingPercent())
	}
	if b.Drain(100) {
		t.Fatal("over-drain reported charge left")
	}
	if !b.Empty() || b.RemainingJoules() != 0 {
		t.Fatal("battery must clamp at zero")
	}
}

func TestBatteryNegativeDrainIgnored(t *testing.T) {
	b, err := NewBattery(Model{CapacityJoules: 100, BasePowerWatts: 1, HashEnergyJoules: 0})
	if err != nil {
		t.Fatal(err)
	}
	b.Drain(-50)
	if b.RemainingPercent() != 100 {
		t.Fatal("negative drain charged the battery")
	}
}

func TestNewBatteryRejectsBadModel(t *testing.T) {
	if _, err := NewBattery(Model{}); err == nil {
		t.Fatal("zero model accepted")
	}
}

// The calibration must reproduce the paper's headline numbers: ~4 PoW
// blocks and ~11 PoS blocks per 1% of a Galaxy S8 battery at 25 s mean
// block time, i.e. PoS uses roughly 64% less energy per block.
func TestCalibrationMatchesPaper(t *testing.T) {
	m := GalaxyS8()
	onePercent := m.CapacityJoules / 100

	powPerBlock := m.BlockEnergy(25, 1<<16) // expected hashes at 16-bit difficulty
	posPerBlock := m.BlockEnergy(25, 26)    // 1 hit hash + 1 check/s

	powBlocks := onePercent / powPerBlock
	posBlocks := onePercent / posPerBlock
	if powBlocks < 3.4 || powBlocks > 4.6 {
		t.Fatalf("PoW blocks per 1%% = %.2f, want ≈ 4 (paper)", powBlocks)
	}
	if posBlocks < 9.5 || posBlocks > 12.5 {
		t.Fatalf("PoS blocks per 1%% = %.2f, want ≈ 11 (paper)", posBlocks)
	}
	saving := 1 - posPerBlock/powPerBlock
	if saving < 0.55 || saving > 0.75 {
		t.Fatalf("PoS energy saving = %.0f%%, want ≈ 64%% (paper)", saving*100)
	}
	t.Logf("PoW %.2f blocks/%%, PoS %.2f blocks/%%, saving %.0f%%", powBlocks, posBlocks, saving*100)
}

func TestBatteryString(t *testing.T) {
	b, err := NewBattery(GalaxyS8())
	if err != nil {
		t.Fatal(err)
	}
	if s := b.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestDrainBlock(t *testing.T) {
	m := Model{CapacityJoules: 1000, BasePowerWatts: 1, HashEnergyJoules: 0.01}
	b, err := NewBattery(m)
	if err != nil {
		t.Fatal(err)
	}
	b.DrainBlock(10, 1000) // 10 + 10 = 20 J
	if got := b.RemainingJoules(); math.Abs(got-980) > 1e-9 {
		t.Fatalf("remaining %v, want 980", got)
	}
}

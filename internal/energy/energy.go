// Package energy models the battery of an edge device during mining,
// reproducing the Fig. 6 smartphone experiment synthetically.
//
// Substitution note (see DESIGN.md): the paper measured a Samsung Galaxy
// S8 mining PoW and PoS with 25 s mean block time and reported ~4 blocks
// per 1% battery for PoW versus ~11 blocks per 1% for PoS. We model drain
// as
//
//	E(block) = P_base · t_block + E_hash · hashes
//
// and calibrate the two constants from the paper's own numbers:
//
//   - Galaxy S8 battery: 3000 mAh · 3.85 V ≈ 41.6 kJ, so 1% ≈ 416 J.
//   - PoS does ~1 hash/s, so hash energy is negligible and the baseline
//     power follows from 11 blocks (275 s) per 416 J: P_base ≈ 1.51 W.
//   - PoW burns 416 J per 4 blocks (100 s): 104 J/block, of which
//     P_base·25 ≈ 37.8 J is baseline, leaving ≈ 66 J for the expected
//     2^16 hashes: E_hash ≈ 1.0 mJ/hash (a realistic figure for JS
//     SHA-256 on a phone, matching the paper's react-native setup).
//
// The model counts the real hash totals produced by the pow and pos
// implementations, so the reproduced Fig. 6 is driven by actual work.
package energy

import (
	"errors"
	"fmt"
)

// Calibrated constants (see package comment).
const (
	// GalaxyS8CapacityJoules is the full battery capacity.
	GalaxyS8CapacityJoules = 41600.0
	// BasePowerWatts is the phone's power draw while mining-idle (screen,
	// radio, runtime) — dominates PoS drain.
	BasePowerWatts = 1.512
	// HashEnergyJoules is the energy per SHA-256 evaluation — dominates
	// PoW drain.
	HashEnergyJoules = 1.01e-3
)

// Model holds the device energy constants.
type Model struct {
	CapacityJoules   float64
	BasePowerWatts   float64
	HashEnergyJoules float64
}

// GalaxyS8 returns the calibrated model for the paper's test device.
func GalaxyS8() Model {
	return Model{
		CapacityJoules:   GalaxyS8CapacityJoules,
		BasePowerWatts:   BasePowerWatts,
		HashEnergyJoules: HashEnergyJoules,
	}
}

// Validate checks the model constants.
func (m Model) Validate() error {
	if m.CapacityJoules <= 0 || m.BasePowerWatts < 0 || m.HashEnergyJoules < 0 {
		return errors.New("energy: non-positive capacity or negative power constants")
	}
	return nil
}

// BlockEnergy returns the joules consumed mining one block that took
// seconds of wall time and hashes hash evaluations.
func (m Model) BlockEnergy(seconds float64, hashes uint64) float64 {
	return m.BasePowerWatts*seconds + m.HashEnergyJoules*float64(hashes)
}

// Battery tracks remaining charge. The zero value is empty; create one
// with NewBattery.
type Battery struct {
	model     Model
	remaining float64
}

// NewBattery returns a fully charged battery for the model.
func NewBattery(m Model) (*Battery, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Battery{model: m, remaining: m.CapacityJoules}, nil
}

// Drain removes joules and reports whether any charge is left. Draining
// below zero clamps to zero.
func (b *Battery) Drain(joules float64) bool {
	if joules < 0 {
		joules = 0
	}
	b.remaining -= joules
	if b.remaining < 0 {
		b.remaining = 0
	}
	return b.remaining > 0
}

// DrainBlock charges the battery for one mined block.
func (b *Battery) DrainBlock(seconds float64, hashes uint64) bool {
	return b.Drain(b.model.BlockEnergy(seconds, hashes))
}

// RemainingJoules returns the charge left.
func (b *Battery) RemainingJoules() float64 { return b.remaining }

// RemainingPercent returns the charge left as 0-100.
func (b *Battery) RemainingPercent() float64 {
	return 100 * b.remaining / b.model.CapacityJoules
}

// Empty reports whether the battery is fully drained.
func (b *Battery) Empty() bool { return b.remaining <= 0 }

// String implements fmt.Stringer.
func (b *Battery) String() string {
	return fmt.Sprintf("%.1f%% (%.0f J)", b.RemainingPercent(), b.remaining)
}

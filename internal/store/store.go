// Package store provides the durable persistence layer for a live edge
// node: an append-only segmented block WAL, a content-addressed data-item
// store, persisted state snapshots and crash recovery (torn-tail
// truncation + manifest checkpoints).
//
// The paper's premise is that edge nodes "leave the network and disconnect
// from others frequently" (Section I); the recent-block allocation of
// Section IV-C exists so a briefly-offline node can recover missing blocks
// within a few hops. That story needs the node to survive a process
// restart with its chain intact, which this package provides:
//
//   - wal-<idx>.log   append-only block WAL segments (length + CRC32
//     framed records, each payload an internal/block wire encoding),
//     sealed every SegmentBlocks appends so history below the prune
//     horizon compacts by whole-file unlink
//   - data/xx/<hash>  content-addressed data items (temp-file + rename)
//   - snapshot-<h>.bin / spine-<h>.bin  serialized engine state + header
//     spine at the latest finalized snapshot height, letting a restart
//     (or a fresh node, over the wire) skip replaying pruned history
//   - manifest.json   checkpoint (chain head + height + snapshot hashes)
//     making replay verification incremental and snapshot use safe
//
// On Open the segments are scanned in index order, torn tails and
// discontinuous stale segments are cut away, hash links are verified, and
// the surviving blocks are handed to the caller to replay on top of the
// recovered snapshot (or from genesis when no valid snapshot exists).
// Blocks at or below the last checkpoint height skip the expensive
// per-item signature re-verification: their integrity is already covered
// by the record CRC and the hash-link walk.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/meta"
)

// Store is the durable node store: segmented block WAL + content-addressed
// data items + state snapshots + checkpoint manifest. It is safe for
// concurrent use.
type Store struct {
	dir  string
	wal  *WAL
	data *DataStore

	mu        sync.Mutex
	recovered []*block.Block
	manifest  Manifest

	// Recovered snapshot (valid only when snapOK).
	snapBlob   []byte
	snapSpine  []chain.Header
	snapHeight uint64
	snapOK     bool
}

// Options configures a Store.
type Options struct {
	// Sync is the WAL fsync policy (default SyncBatch).
	Sync SyncPolicy
	// BatchN fsyncs after this many appends under SyncBatch (default 8).
	BatchN int
	// BatchInterval fsyncs when this much time has passed since the last
	// sync under SyncBatch (default 500ms).
	BatchInterval int64 // nanoseconds; 0 = default
	// SegmentBlocks seals a WAL segment after this many appends (default
	// DefaultSegmentBlocks). Smaller segments compact at a finer grain.
	SegmentBlocks int
	// CacheBytes bounds the data-item LRU read cache (default 64 MiB).
	CacheBytes int
	// Metrics, when non-nil, receives the store's instrumentation (see
	// NewMetrics). nil disables collection.
	Metrics *Metrics
}

const (
	legacyWALFile = "wal.log"
	manifestFile  = "manifest.json"
	dataDir       = "data"
)

// Open opens (or creates) the store rooted at dir and runs crash
// recovery: WAL segments are scanned, torn or stale tails are cut, the
// persisted snapshot (if any) is hash-verified, and the surviving block
// sequence is validated (hash links always; full content verification
// only above the checkpoint height). The recovered blocks are available
// via RecoveredBlocks, the snapshot via RecoveredSnapshot.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir: %w", err)
	}
	man, err := LoadManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		// A corrupt manifest costs only the verification shortcut (and any
		// snapshot, which cannot be trusted without its manifest hash).
		man = Manifest{}
	}
	m := opts.Metrics.orInert()
	if err := migrateLegacyWAL(dir); err != nil {
		return nil, err
	}
	blob, spine, snapHeight, snapOK := loadSnapshot(dir, man)
	blocks, layout, err := recoverSegments(dir)
	if err != nil {
		return nil, err
	}
	scanned := len(blocks)
	blocks = validatePrefix(blocks, man.Height)
	if !snapOK && len(blocks) > 0 && blocks[0].Index != 1 {
		// The blocks start mid-chain (a pruned node's log) but the snapshot
		// that anchored them is missing or corrupt. They cannot be replayed
		// from genesis; fall back cleanly to an empty chain.
		blocks = nil
		man = Manifest{}
		if err := SaveManifest(filepath.Join(dir, manifestFile), man); err != nil {
			return nil, err
		}
	}
	if snapOK && len(blocks) > 0 && blocks[0].Index > snapHeight+1 {
		// Gap between the snapshot anchor and the first persisted block:
		// the blocks are unreachable, drop them (keep the snapshot).
		blocks = nil
	}
	m.RecoveredBlocks.Add(len(blocks))
	m.RecoveryDropped.Add(scanned - len(blocks))
	// If validation dropped blocks beyond what the scan kept, rewrite the
	// segments to the surviving prefix so disk and memory agree.
	if len(blocks) < scanned {
		layout, err = writeSegments(dir, blocks, opts.SegmentBlocks)
		if err != nil {
			return nil, err
		}
	}
	w, err := OpenWAL(dir, opts, layout)
	if err != nil {
		return nil, err
	}
	ds, err := NewDataStore(filepath.Join(dir, dataDir), opts.CacheBytes)
	if err != nil {
		w.Close()
		return nil, err
	}
	ds.setMetrics(m)
	return &Store{
		dir: dir, wal: w, data: ds, recovered: blocks, manifest: man,
		snapBlob: blob, snapSpine: spine, snapHeight: snapHeight, snapOK: snapOK,
	}, nil
}

// validatePrefix returns the longest prefix of blocks that forms a valid
// hash-linked sequence. Blocks at or below the checkpoint height are
// trusted content-wise (CRC already checked); newer ones get a full
// VerifySelf including item signatures.
func validatePrefix(blocks []*block.Block, checkpointHeight uint64) []*block.Block {
	for i, b := range blocks {
		if b.Index > checkpointHeight {
			if err := b.VerifySelf(); err != nil {
				return blocks[:i]
			}
		} else if b.ComputeHash() != b.Hash {
			return blocks[:i]
		}
		if i > 0 {
			if err := b.VerifyLink(blocks[i-1]); err != nil {
				return blocks[:i]
			}
		}
	}
	return blocks
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// RecoveredBlocks returns the blocks replayed from the WAL at Open, in
// index order (the genesis block is never persisted; on a pruned node the
// first block is the one after the snapshot anchor). The caller replays
// them into its chain and must not modify the slice.
func (s *Store) RecoveredBlocks() []*block.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// RecoveredSnapshot returns the hash-verified state snapshot found at
// Open: the serialized engine state blob, the header spine [1, height],
// and the snapshot height. ok is false when no valid snapshot exists (the
// caller replays RecoveredBlocks from genesis instead).
func (s *Store) RecoveredSnapshot() (blob []byte, spine []chain.Header, height uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.snapOK {
		return nil, nil, 0, false
	}
	return s.snapBlob, s.snapSpine, s.snapHeight, true
}

// AppendBlock durably appends one block to the WAL (durability subject to
// the configured fsync policy).
func (s *Store) AppendBlock(b *block.Block) error { return s.wal.Append(b) }

// CompactBlocks unlinks sealed WAL segments that lie wholly below the
// given height (the engine's prune horizon). The persisted snapshot plus
// the remaining segments always reconstruct the node's state.
func (s *Store) CompactBlocks(below uint64) error {
	_, err := s.wal.CompactBelow(below)
	return err
}

// WALSize returns the total on-disk WAL size in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// WALSegments returns the number of on-disk WAL segment files.
func (s *Store) WALSegments() int { return s.wal.Segments() }

// ResetChain atomically replaces the WAL content with the given block
// sequence (genesis excluded by the caller). Used after a fork
// replacement adopts a longer chain wholesale. The checkpoint is cleared
// (it referenced the replaced history); any persisted snapshot is kept —
// if the fork invalidated it, the next Open detects the mismatch against
// the recovered blocks and the next checkpoint re-persists a fresh one.
func (s *Store) ResetChain(blocks []*block.Block) error {
	if err := s.wal.Reset(blocks); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest.Height = 0
	s.manifest.Head = ""
	s.manifest.WALBytes = 0
	return SaveManifest(filepath.Join(s.dir, manifestFile), s.manifest)
}

// Checkpoint fsyncs the WAL and persists the chain head + height so the
// next Open can skip full content verification up to this height.
func (s *Store) Checkpoint(height uint64, head block.Hash) error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest.Height = height
	s.manifest.Head = head.String()
	s.manifest.WALBytes = s.wal.Size()
	return SaveManifest(filepath.Join(s.dir, manifestFile), s.manifest)
}

// PutData stores a data item's content under its content hash.
func (s *Store) PutData(id meta.DataID, content []byte) error {
	return s.data.Put(id, content)
}

// GetData returns a data item's content, from the LRU cache when hot.
func (s *Store) GetData(id meta.DataID) ([]byte, bool) {
	content, ok, err := s.data.Get(id)
	if err != nil {
		return nil, false
	}
	return content, ok
}

// HasData reports whether the item's content is on disk.
func (s *Store) HasData(id meta.DataID) bool { return s.data.Has(id) }

// PruneData deletes every stored data item for which expired returns
// true, returning how many were removed.
func (s *Store) PruneData(expired func(meta.DataID) bool) (int, error) {
	return s.data.Prune(expired)
}

// Close fsyncs and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error { return s.wal.Close() }

// Package store provides the durable persistence layer for a live edge
// node: an append-only block WAL, a content-addressed data-item store and
// crash recovery (torn-tail truncation + manifest checkpoints).
//
// The paper's premise is that edge nodes "leave the network and disconnect
// from others frequently" (Section I); the recent-block allocation of
// Section IV-C exists so a briefly-offline node can recover missing blocks
// within a few hops. That story needs the node to survive a process
// restart with its chain intact, which this package provides:
//
//   - wal.log        append-only block WAL (length + CRC32 framed records,
//     each payload an internal/block wire encoding)
//   - data/xx/<hash> content-addressed data items (temp-file + rename)
//   - manifest.json  checkpoint (chain head + height) making replay
//     verification incremental
//
// On Open the WAL is scanned, a torn tail record is truncated away, hash
// links are verified, and the surviving blocks are handed to the caller to
// replay into its chain.Chain / storage view. Blocks at or below the last
// checkpoint height skip the expensive per-item signature re-verification:
// their integrity is already covered by the record CRC and the hash-link
// walk.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/block"
	"repro/internal/meta"
)

// Store is the durable node store: block WAL + content-addressed data
// items + checkpoint manifest. It is safe for concurrent use.
type Store struct {
	dir  string
	wal  *WAL
	data *DataStore

	mu        sync.Mutex
	recovered []*block.Block
	manifest  Manifest
}

// Options configures a Store.
type Options struct {
	// Sync is the WAL fsync policy (default SyncBatch).
	Sync SyncPolicy
	// BatchN fsyncs after this many appends under SyncBatch (default 8).
	BatchN int
	// BatchInterval fsyncs when this much time has passed since the last
	// sync under SyncBatch (default 500ms).
	BatchInterval int64 // nanoseconds; 0 = default
	// CacheBytes bounds the data-item LRU read cache (default 64 MiB).
	CacheBytes int
	// Metrics, when non-nil, receives the store's instrumentation (see
	// NewMetrics). nil disables collection.
	Metrics *Metrics
}

const (
	walFile      = "wal.log"
	manifestFile = "manifest.json"
	dataDir      = "data"
)

// Open opens (or creates) the store rooted at dir and runs crash
// recovery: the WAL is scanned, a torn or corrupt tail is truncated, and
// the surviving block sequence is validated (hash links always; full
// content verification only above the checkpoint height). The recovered
// blocks are available via RecoveredBlocks.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: mkdir: %w", err)
	}
	man, err := LoadManifest(filepath.Join(dir, manifestFile))
	if err != nil {
		// A corrupt manifest costs only the verification shortcut.
		man = Manifest{}
	}
	m := opts.Metrics.orInert()
	blocks, err := RecoverWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	scanned := len(blocks)
	blocks = validatePrefix(blocks, man.Height)
	m.RecoveredBlocks.Add(len(blocks))
	m.RecoveryDropped.Add(scanned - len(blocks))
	// If validation dropped blocks beyond what the scan kept, rewrite the
	// WAL to the surviving prefix so the file and memory agree.
	if err := rewriteIfShorter(filepath.Join(dir, walFile), blocks); err != nil {
		return nil, err
	}
	w, err := OpenWAL(filepath.Join(dir, walFile), opts)
	if err != nil {
		return nil, err
	}
	ds, err := NewDataStore(filepath.Join(dir, dataDir), opts.CacheBytes)
	if err != nil {
		w.Close()
		return nil, err
	}
	ds.setMetrics(m)
	return &Store{dir: dir, wal: w, data: ds, recovered: blocks, manifest: man}, nil
}

// validatePrefix returns the longest prefix of blocks that forms a valid
// hash-linked sequence. Blocks at or below the checkpoint height are
// trusted content-wise (CRC already checked); newer ones get a full
// VerifySelf including item signatures.
func validatePrefix(blocks []*block.Block, checkpointHeight uint64) []*block.Block {
	for i, b := range blocks {
		if b.Index > checkpointHeight {
			if err := b.VerifySelf(); err != nil {
				return blocks[:i]
			}
		} else if b.ComputeHash() != b.Hash {
			return blocks[:i]
		}
		if i > 0 {
			if err := b.VerifyLink(blocks[i-1]); err != nil {
				return blocks[:i]
			}
		}
	}
	return blocks
}

// rewriteIfShorter rewrites the WAL when validation kept fewer blocks than
// the scan decoded, so a corrupt middle record cannot resurface.
func rewriteIfShorter(path string, keep []*block.Block) error {
	scanned, size, err := ScanWAL(path)
	if err != nil {
		return err
	}
	if len(scanned) <= len(keep) {
		return nil
	}
	_ = size
	return WriteWAL(path, keep)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// RecoveredBlocks returns the blocks replayed from the WAL at Open, in
// index order (the genesis block is never persisted). The caller replays
// them into its chain and must not modify the slice.
func (s *Store) RecoveredBlocks() []*block.Block {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// AppendBlock durably appends one block to the WAL (durability subject to
// the configured fsync policy).
func (s *Store) AppendBlock(b *block.Block) error { return s.wal.Append(b) }

// ResetChain atomically replaces the WAL content with the given block
// sequence (genesis excluded by the caller). Used after a fork
// replacement adopts a longer chain wholesale.
func (s *Store) ResetChain(blocks []*block.Block) error {
	if err := s.wal.Reset(blocks); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest = Manifest{}
	return SaveManifest(filepath.Join(s.dir, manifestFile), s.manifest)
}

// Checkpoint fsyncs the WAL and persists the chain head + height so the
// next Open can skip full content verification up to this height.
func (s *Store) Checkpoint(height uint64, head block.Hash) error {
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest = Manifest{Height: height, Head: head.String(), WALBytes: s.wal.Size()}
	return SaveManifest(filepath.Join(s.dir, manifestFile), s.manifest)
}

// PutData stores a data item's content under its content hash.
func (s *Store) PutData(id meta.DataID, content []byte) error {
	return s.data.Put(id, content)
}

// GetData returns a data item's content, from the LRU cache when hot.
func (s *Store) GetData(id meta.DataID) ([]byte, bool) {
	content, ok, err := s.data.Get(id)
	if err != nil {
		return nil, false
	}
	return content, ok
}

// HasData reports whether the item's content is on disk.
func (s *Store) HasData(id meta.DataID) bool { return s.data.Has(id) }

// PruneData deletes every stored data item for which expired returns
// true, returning how many were removed.
func (s *Store) PruneData(expired func(meta.DataID) bool) (int, error) {
	return s.data.Prune(expired)
}

// Close fsyncs and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error { return s.wal.Close() }

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/block"
)

// WAL segmentation (DESIGN.md §14). Blocks append into files named
// wal-<firstIndex>.log; a segment seals after Options.SegmentBlocks
// records and compaction below the prune horizon unlinks whole sealed
// files instead of rewriting one giant log. Recovery stitches the
// segments back together in index order, enforcing that each file starts
// at the index its name claims and continues exactly where the previous
// one stopped; any discontinuity (e.g. stale files surviving a crash
// mid-Reset) cuts the log there and unlinks the orphaned tail.

const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"
	// DefaultSegmentBlocks is the per-segment seal threshold.
	DefaultSegmentBlocks = 512
)

// segmentInfo describes one on-disk WAL segment file.
type segmentInfo struct {
	start  uint64 // index of the first block in the file
	blocks int    // decoded block count
	bytes  int64  // valid byte length
	path   string
}

func (s segmentInfo) lastIndex() uint64 { return s.start + uint64(s.blocks) - 1 }

func segmentPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", segmentPrefix, start, segmentSuffix))
}

// parseSegmentStart extracts the first-block index from a segment file
// name, false for unrelated files.
func parseSegmentStart(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
	if mid == "" {
		return 0, false
	}
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable
// before the caller proceeds (the classic create-then-crash hole that the
// old single-file Reset left open).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: dir sync: %w", err)
	}
	return nil
}

// listSegments returns the segment files in dir sorted by start index.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list wal segments: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		start, ok := parseSegmentStart(e.Name())
		if !ok {
			continue
		}
		segs = append(segs, segmentInfo{start: start, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// migrateLegacyWAL renames a pre-segmentation wal.log into segment form
// (keyed by its first block index). An empty or unreadable legacy log is
// simply removed; its content would not have survived recovery anyway.
func migrateLegacyWAL(dir string) error {
	legacy := filepath.Join(dir, legacyWALFile)
	if _, err := os.Stat(legacy); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: stat legacy wal: %w", err)
	}
	blocks, _, err := ScanWAL(legacy)
	if err != nil {
		return err
	}
	if len(blocks) == 0 {
		if err := os.Remove(legacy); err != nil {
			return fmt.Errorf("store: drop empty legacy wal: %w", err)
		}
		return syncDir(dir)
	}
	if err := os.Rename(legacy, segmentPath(dir, blocks[0].Index)); err != nil {
		return fmt.Errorf("store: migrate legacy wal: %w", err)
	}
	return syncDir(dir)
}

// recoverSegments scans every segment in index order, truncating a torn
// tail record and cutting the log at the first discontinuity: a segment
// whose first block index disagrees with its file name, or that does not
// continue exactly where the previous segment stopped (stale files from a
// crash mid-Reset). Everything at and after the cut is unlinked so the
// next crash cannot resurrect it. Returns the surviving blocks and the
// on-disk layout they live in.
func recoverSegments(dir string) ([]*block.Block, []segmentInfo, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, err
	}
	var (
		out    []*block.Block
		layout []segmentInfo
	)
	cutFrom := -1
	for i := range segs {
		seg := &segs[i]
		blocks, validSize, err := ScanWAL(seg.path)
		if err != nil {
			return nil, nil, err
		}
		st, err := os.Stat(seg.path)
		if err != nil {
			return nil, nil, fmt.Errorf("store: stat wal segment: %w", err)
		}
		torn := st.Size() > validSize
		switch {
		case len(blocks) == 0 && i == len(segs)-1 && !torn:
			// Empty final segment: a crash right after a roll. Harmless.
		case len(blocks) == 0:
			// Empty (or fully corrupt) non-final segment: continuity across
			// it is unknowable, cut here.
			cutFrom = i
		case blocks[0].Index != seg.start:
			cutFrom = i
		case len(out) > 0 && blocks[0].Index != out[len(out)-1].Index+1:
			cutFrom = i
		}
		if cutFrom >= 0 {
			break
		}
		if torn {
			if err := os.Truncate(seg.path, validSize); err != nil {
				return nil, nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
			}
			// A torn record mid-log orphans every later segment.
			cutFrom = i + 1
		}
		seg.blocks = len(blocks)
		seg.bytes = validSize
		out = append(out, blocks...)
		layout = append(layout, *seg)
		if cutFrom >= 0 {
			break
		}
	}
	if cutFrom >= 0 && cutFrom < len(segs) {
		for _, s := range segs[cutFrom:] {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return nil, nil, fmt.Errorf("store: drop orphaned wal segment: %w", err)
			}
		}
		if err := syncDir(dir); err != nil {
			return nil, nil, err
		}
	}
	return out, layout, nil
}

// writeSegments atomically replaces the directory's segment set with one
// holding exactly the given blocks, segBlocks per file. New files land via
// temp + rename before stale ones are unlinked, and the directory is
// fsynced last; a crash anywhere leaves a set that recoverSegments cuts
// back to a valid prefix.
func writeSegments(dir string, blocks []*block.Block, segBlocks int) ([]segmentInfo, error) {
	if segBlocks <= 0 {
		segBlocks = DefaultSegmentBlocks
	}
	existing, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var layout []segmentInfo
	want := make(map[string]bool)
	for off := 0; off < len(blocks); off += segBlocks {
		end := off + segBlocks
		if end > len(blocks) {
			end = len(blocks)
		}
		chunk := blocks[off:end]
		path := segmentPath(dir, chunk[0].Index)
		if err := WriteWAL(path, chunk); err != nil {
			return nil, err
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("store: stat wal segment: %w", err)
		}
		layout = append(layout, segmentInfo{
			start:  chunk[0].Index,
			blocks: len(chunk),
			bytes:  st.Size(),
			path:   path,
		})
		want[path] = true
	}
	removed := false
	for _, s := range existing {
		if want[s.path] {
			continue
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: drop stale wal segment: %w", err)
		}
		removed = true
	}
	if removed {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	return layout, nil
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/block"
)

// The WAL is a sequence of framed records, one per block:
//
//	[4-byte big-endian payload length][4-byte big-endian CRC32 (IEEE) of
//	payload][payload = block wire encoding (internal/block codec)]
//
// A crash can leave at most one torn record at the tail; recovery
// truncates it. The writer opens the file with O_APPEND and serializes
// appends with a mutex so concurrent miners (block adoption happens on
// multiple goroutines in livenode) cannot interleave records.
//
// Since the finite-lifetime refactor (DESIGN.md §14) the log is segmented:
// records land in `wal-<firstIndex>.log` files sealed every SegmentBlocks
// appends, so CompactBelow can delete history wholly below the prune
// horizon by unlinking whole files. The framing within each segment is
// unchanged; ScanWAL/RecoverWAL/WriteWAL operate on one segment file.

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs after BatchN appends or
	// BatchInterval elapsed time, whichever comes first.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append (maximum durability).
	SyncAlways
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	// A crash may lose recent blocks, but the tail-truncation recovery
	// still yields a consistent prefix.
	SyncNone
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses "always", "batch" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return SyncBatch, fmt.Errorf("store: unknown fsync policy %q (want always|batch|none)", s)
}

const (
	recordHeaderSize = 8
	// MaxRecordSize bounds one WAL payload against corrupt length
	// prefixes (matches the p2p frame cap).
	MaxRecordSize = 64 << 20

	defaultBatchN        = 8
	defaultBatchInterval = 500 * time.Millisecond
)

// WAL is the append-only segmented block log writer.
type WAL struct {
	dir     string
	metrics *Metrics // never nil (orInert)

	mu          sync.Mutex
	f           *os.File // active segment handle; nil until first append
	active      segmentInfo
	sealed      []segmentInfo
	sealedBytes int64
	segBlocks   int
	// nextIndex is the block index the next Append must carry (0 = any:
	// an empty log accepts whatever height the first block has, which is
	// how a snapshot-bootstrapped node starts persisting mid-chain).
	nextIndex uint64
	policy    SyncPolicy
	batchN    int
	interval  time.Duration
	pending   int
	lastSync  time.Time
	closed    bool
}

// OpenWAL opens the segmented WAL in dir for appending, attaching to the
// given recovered segment layout (from recoverSegments/writeSegments; nil
// for a fresh directory). The newest segment becomes the active one.
func OpenWAL(dir string, opts Options, layout []segmentInfo) (*WAL, error) {
	w := &WAL{
		dir:       dir,
		metrics:   opts.Metrics.orInert(),
		segBlocks: opts.SegmentBlocks,
		policy:    opts.Sync,
		batchN:    opts.BatchN,
		interval:  time.Duration(opts.BatchInterval),
		lastSync:  time.Now(),
	}
	if w.segBlocks <= 0 {
		w.segBlocks = DefaultSegmentBlocks
	}
	if w.batchN <= 0 {
		w.batchN = defaultBatchN
	}
	if w.interval <= 0 {
		w.interval = defaultBatchInterval
	}
	if err := w.attachLocked(layout); err != nil {
		return nil, err
	}
	return w, nil
}

// attachLocked points the writer at an on-disk segment layout.
func (w *WAL) attachLocked(layout []segmentInfo) error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.sealed = nil
	w.sealedBytes = 0
	w.active = segmentInfo{}
	w.nextIndex = 0
	if len(layout) == 0 {
		return nil
	}
	last := layout[len(layout)-1]
	f, err := os.OpenFile(last.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open wal segment: %w", err)
	}
	w.f = f
	w.active = last
	w.sealed = append([]segmentInfo(nil), layout[:len(layout)-1]...)
	for _, s := range w.sealed {
		w.sealedBytes += s.bytes
	}
	if last.blocks > 0 {
		w.nextIndex = last.lastIndex() + 1
	} else if len(w.sealed) > 0 {
		w.nextIndex = w.sealed[len(w.sealed)-1].lastIndex() + 1
	}
	return nil
}

// rollLocked seals the active segment (if any) and starts a new one whose
// file name is keyed by the first block index it will hold.
func (w *WAL) rollLocked(start uint64) error {
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: seal wal segment: %w", err)
		}
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("store: seal wal segment: %w", err)
		}
		w.f = nil
		w.sealed = append(w.sealed, w.active)
		w.sealedBytes += w.active.bytes
		w.metrics.WALSegmentsSealed.Inc()
	}
	path := segmentPath(w.dir, start)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create wal segment: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.active = segmentInfo{start: start, path: path}
	return nil
}

// Append frames and writes one block, fsyncing per the policy. Blocks must
// arrive in contiguous index order (Reset realigns after a fork).
func (w *WAL) Append(b *block.Block) error {
	payload := b.Encode()
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: wal record of %d bytes exceeds cap", len(payload))
	}
	rec := make([]byte, recordHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[recordHeaderSize:], payload)

	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	defer w.metrics.WALAppendNs.ObserveSince(start)
	if w.closed {
		return errors.New("store: wal closed")
	}
	if w.nextIndex != 0 && b.Index != w.nextIndex {
		return fmt.Errorf("store: wal append block %d, expected %d (use Reset for forks)", b.Index, w.nextIndex)
	}
	if w.f == nil || w.active.blocks >= w.segBlocks {
		if err := w.rollLocked(b.Index); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.active.bytes += int64(len(rec))
	w.active.blocks++
	w.nextIndex = b.Index + 1
	w.pending++
	w.metrics.WALAppends.Inc()
	switch w.policy {
	case SyncAlways:
		return w.syncLocked()
	case SyncBatch:
		if w.pending >= w.batchN || time.Since(w.lastSync) >= w.interval {
			return w.syncLocked()
		}
	}
	return nil
}

func (w *WAL) syncLocked() error {
	start := time.Now()
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	w.metrics.WALSyncs.Inc()
	w.metrics.WALFsyncNs.ObserveSince(start)
	w.pending = 0
	w.lastSync = time.Now()
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// Size returns the total WAL size in bytes across all segments.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sealedBytes + w.active.bytes
}

// Segments returns the number of on-disk segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.sealed)
	if w.f != nil {
		n++
	}
	return n
}

// FirstIndex returns the lowest block index the log still holds (ok=false
// when the log is empty).
func (w *WAL) FirstIndex() (uint64, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, s := range w.sealed {
		if s.blocks > 0 {
			return s.start, true
		}
	}
	if w.f != nil && w.active.blocks > 0 {
		return w.active.start, true
	}
	return 0, false
}

// CompactBelow unlinks sealed segments whose every block lies strictly
// below the given height. The active segment is never removed. Returns the
// number of segment files deleted.
func (w *WAL) CompactBelow(height uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("store: wal closed")
	}
	removed := 0
	kept := w.sealed[:0]
	for _, s := range w.sealed {
		if s.blocks > 0 && s.lastIndex() < height {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				// Keep bookkeeping consistent with disk on failure.
				kept = append(kept, s)
				continue
			}
			w.sealedBytes -= s.bytes
			removed++
			continue
		}
		kept = append(kept, s)
	}
	w.sealed = kept
	if removed > 0 {
		w.metrics.WALSegmentsCompacted.Add(removed)
		if err := syncDir(w.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Reset atomically replaces the whole log content with the given blocks,
// rewriting the segment set (temp-file + rename per segment, stale
// segments unlinked, directory fsynced). Used when a fork replacement
// rewrites the chain. A crash mid-Reset leaves a mix of old and new
// segment files; recovery's contiguity and hash-link walk cuts the stale
// tail rather than splicing old history onto the new prefix.
func (w *WAL) Reset(blocks []*block.Block) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: wal closed")
	}
	layout, err := writeSegments(w.dir, blocks, w.segBlocks)
	if err != nil {
		return err
	}
	if err := w.attachLocked(layout); err != nil {
		return err
	}
	w.pending = 0
	return nil
}

// Close fsyncs (unless SyncNone) and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	var syncErr error
	if w.policy != SyncNone {
		syncErr = w.f.Sync()
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// ScanWAL reads one segment file and returns every decodable block plus
// the byte offset up to which the file is well-formed. A torn or corrupt
// record (short header, short payload, CRC mismatch, undecodable block)
// ends the scan; everything before it is returned. A missing file scans as
// empty.
func ScanWAL(path string) (blocks []*block.Block, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: scan wal: %w", err)
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, recordHeaderSize)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return blocks, off, nil // clean EOF or torn header
		}
		size := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if size == 0 || size > MaxRecordSize {
			return blocks, off, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			return blocks, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return blocks, off, nil
		}
		b, err := block.Decode(payload)
		if err != nil {
			return blocks, off, nil
		}
		blocks = append(blocks, b)
		off += int64(recordHeaderSize) + int64(size)
	}
}

// RecoverWAL scans one segment file and truncates any torn tail so the
// file ends on a record boundary, returning the surviving blocks.
func RecoverWAL(path string) ([]*block.Block, error) {
	blocks, validSize, err := ScanWAL(path)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return blocks, nil
		}
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	if st.Size() > validSize {
		if err := os.Truncate(path, validSize); err != nil {
			return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	return blocks, nil
}

// WriteWAL writes a fresh segment file containing exactly the given
// blocks, via temp-file + fsync + rename + directory fsync so a crash
// leaves either the old or the new file, never a hybrid.
func WriteWAL(path string, blocks []*block.Block) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wal-*")
	if err != nil {
		return fmt.Errorf("store: wal tmp: %w", err)
	}
	defer os.Remove(tmp.Name())
	var hdr [recordHeaderSize]byte
	for _, b := range blocks {
		payload := b.Encode()
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("store: wal rewrite: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("store: wal rewrite: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: wal rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: wal rewrite close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: wal rewrite rename: %w", err)
	}
	return syncDir(dir)
}

package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/block"
)

// The WAL is a sequence of framed records, one per block:
//
//	[4-byte big-endian payload length][4-byte big-endian CRC32 (IEEE) of
//	payload][payload = block wire encoding (internal/block codec)]
//
// A crash can leave at most one torn record at the tail; recovery
// truncates it. The writer opens the file with O_APPEND and serializes
// appends with a mutex so concurrent miners (block adoption happens on
// multiple goroutines in livenode) cannot interleave records.

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs after BatchN appends or
	// BatchInterval elapsed time, whichever comes first.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every append (maximum durability).
	SyncAlways
	// SyncNone never fsyncs explicitly; the OS flushes at its leisure.
	// A crash may lose recent blocks, but the tail-truncation recovery
	// still yields a consistent prefix.
	SyncNone
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParseSyncPolicy parses "always", "batch" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch", "":
		return SyncBatch, nil
	case "none":
		return SyncNone, nil
	}
	return SyncBatch, fmt.Errorf("store: unknown fsync policy %q (want always|batch|none)", s)
}

const (
	recordHeaderSize = 8
	// MaxRecordSize bounds one WAL payload against corrupt length
	// prefixes (matches the p2p frame cap).
	MaxRecordSize = 64 << 20

	defaultBatchN        = 8
	defaultBatchInterval = 500 * time.Millisecond
)

// WAL is the append-only block log writer.
type WAL struct {
	path    string
	metrics *Metrics // never nil (orInert)

	mu       sync.Mutex
	f        *os.File
	size     int64
	policy   SyncPolicy
	batchN   int
	interval time.Duration
	pending  int
	lastSync time.Time
	closed   bool
}

// OpenWAL opens the WAL file for appending. The file is created if
// missing; callers wanting recovery semantics should RecoverWAL first
// (Store.Open does both).
func OpenWAL(path string, opts Options) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	w := &WAL{
		path:     path,
		metrics:  opts.Metrics.orInert(),
		f:        f,
		size:     st.Size(),
		policy:   opts.Sync,
		batchN:   opts.BatchN,
		interval: time.Duration(opts.BatchInterval),
		lastSync: time.Now(),
	}
	if w.batchN <= 0 {
		w.batchN = defaultBatchN
	}
	if w.interval <= 0 {
		w.interval = defaultBatchInterval
	}
	return w, nil
}

// Append frames and writes one block, fsyncing per the policy.
func (w *WAL) Append(b *block.Block) error {
	payload := b.Encode()
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: wal record of %d bytes exceeds cap", len(payload))
	}
	rec := make([]byte, recordHeaderSize+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(payload))
	copy(rec[recordHeaderSize:], payload)

	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	defer w.metrics.WALAppendNs.ObserveSince(start)
	if w.closed {
		return errors.New("store: wal closed")
	}
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	w.size += int64(len(rec))
	w.pending++
	w.metrics.WALAppends.Inc()
	switch w.policy {
	case SyncAlways:
		return w.syncLocked()
	case SyncBatch:
		if w.pending >= w.batchN || time.Since(w.lastSync) >= w.interval {
			return w.syncLocked()
		}
	}
	return nil
}

func (w *WAL) syncLocked() error {
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	w.metrics.WALSyncs.Inc()
	w.metrics.WALFsyncNs.ObserveSince(start)
	w.pending = 0
	w.lastSync = time.Now()
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// Size returns the current WAL size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Reset atomically replaces the WAL content with the given blocks
// (temp-file + rename), used when a fork replacement rewrites the chain.
func (w *WAL) Reset(blocks []*block.Block) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: wal closed")
	}
	if err := WriteWAL(w.path, blocks); err != nil {
		return err
	}
	// Reopen the append handle on the new file.
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen wal: %w", err)
	}
	w.f.Close()
	w.f = f
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat wal: %w", err)
	}
	w.size = st.Size()
	w.pending = 0
	return nil
}

// Close fsyncs (unless SyncNone) and closes the file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var syncErr error
	if w.policy != SyncNone {
		syncErr = w.f.Sync()
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// ScanWAL reads the WAL and returns every decodable block plus the byte
// offset up to which the file is well-formed. A torn or corrupt record
// (short header, short payload, CRC mismatch, undecodable block) ends the
// scan; everything before it is returned. A missing file scans as empty.
func ScanWAL(path string) (blocks []*block.Block, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("store: scan wal: %w", err)
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, recordHeaderSize)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return blocks, off, nil // clean EOF or torn header
		}
		size := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if size == 0 || size > MaxRecordSize {
			return blocks, off, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			return blocks, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return blocks, off, nil
		}
		b, err := block.Decode(payload)
		if err != nil {
			return blocks, off, nil
		}
		blocks = append(blocks, b)
		off += int64(recordHeaderSize) + int64(size)
	}
}

// RecoverWAL scans the WAL and truncates any torn tail so the file ends
// on a record boundary, returning the surviving blocks.
func RecoverWAL(path string) ([]*block.Block, error) {
	blocks, validSize, err := ScanWAL(path)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return blocks, nil
		}
		return nil, fmt.Errorf("store: stat wal: %w", err)
	}
	if st.Size() > validSize {
		if err := os.Truncate(path, validSize); err != nil {
			return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
	}
	return blocks, nil
}

// WriteWAL writes a fresh WAL containing exactly the given blocks, via
// temp-file + fsync + rename so a crash leaves either the old or the new
// file, never a hybrid.
func WriteWAL(path string, blocks []*block.Block) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".wal-*")
	if err != nil {
		return fmt.Errorf("store: wal tmp: %w", err)
	}
	defer os.Remove(tmp.Name())
	var hdr [recordHeaderSize]byte
	for _, b := range blocks {
		payload := b.Encode()
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("store: wal rewrite: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("store: wal rewrite: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: wal rewrite sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: wal rewrite close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: wal rewrite rename: %w", err)
	}
	return nil
}

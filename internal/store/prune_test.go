package store

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/identity"
)

// spineOf converts a block prefix [1, n] into its header spine.
func spineOf(blocks []*block.Block, n uint64) []chain.Header {
	var hs []chain.Header
	for _, b := range blocks {
		if b.Index >= 1 && b.Index <= n {
			hs = append(hs, chain.HeaderOf(b))
		}
	}
	return hs
}

func TestSegmentRollAndMultiSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	blocks := testChain(t, 10)

	s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	appendAll(t, s, blocks)
	if got := s.WALSegments(); got != 3 {
		t.Fatalf("10 appends at 4/segment left %d segments, want 3", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, start := range []uint64{1, 5, 9} {
		if _, err := os.Stat(segmentPath(dir, start)); err != nil {
			t.Fatalf("segment starting at %d missing: %v", start, err)
		}
	}

	s2 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	defer s2.Close()
	got := s2.RecoveredBlocks()
	if len(got) != 10 {
		t.Fatalf("recovered %d blocks across segments, want 10", len(got))
	}
	for i, b := range got {
		if b.Hash != blocks[i+1].Hash {
			t.Fatalf("recovered block %d hash mismatch", i+1)
		}
	}
	// Appends continue into the recovered active segment.
	b11 := block.NewBuilder(blocks[10], identity.Address{}, 11*time.Second, 1, 0).Seal()
	if err := s2.AppendBlock(b11); err != nil {
		t.Fatal(err)
	}
	if got := s2.WALSegments(); got != 3 {
		t.Fatalf("append after recovery rolled early: %d segments", got)
	}
}

func TestCompactBelowKeepsSnapshotAnchoredSuffix(t *testing.T) {
	dir := t.TempDir()
	blocks := testChain(t, 10)
	blob := []byte("opaque engine snapshot at height 8")

	s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	appendAll(t, s, blocks)
	if err := s.SaveSnapshot(8, blob, spineOf(blocks, 7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(8, blocks[8].Hash); err != nil {
		t.Fatal(err)
	}
	sizeBefore := s.WALSize()
	// Horizon 9: blocks below 9 are covered by the snapshot. Segments 1-4
	// and 5-8 lie wholly below it; the active segment must survive.
	if err := s.CompactBlocks(9); err != nil {
		t.Fatal(err)
	}
	if got := s.WALSegments(); got != 1 {
		t.Fatalf("%d segments after compaction, want 1", got)
	}
	if s.WALSize() >= sizeBefore {
		t.Fatal("compaction reclaimed no disk")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	defer s2.Close()
	gotBlob, gotSpine, h, ok := s2.RecoveredSnapshot()
	if !ok || h != 8 {
		t.Fatalf("snapshot not recovered: ok=%v h=%d", ok, h)
	}
	if !bytes.Equal(gotBlob, blob) {
		t.Fatal("snapshot blob changed across restart")
	}
	if !reflect.DeepEqual(gotSpine, spineOf(blocks, 7)) {
		t.Fatal("spine changed across restart")
	}
	rec := s2.RecoveredBlocks()
	if len(rec) != 2 || rec[0].Index != 9 || rec[1].Index != 10 {
		t.Fatalf("recovered suffix wrong: %d blocks starting at %d", len(rec), rec[0].Index)
	}
}

func TestTornTailAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	blocks := testChain(t, 10)

	s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	appendAll(t, s, blocks)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the active segment (blocks 9-10) mid-record: recovery must keep
	// everything from the sealed segments plus the intact prefix.
	active := segmentPath(dir, 9)
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(active, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	if got := s2.RecoveredBlocks(); len(got) != 9 || got[len(got)-1].Index != 9 {
		t.Fatalf("recovered %d blocks after torn tail, want 9", len(got))
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the whole active segment away: the sealed segments still recover.
	if err := os.Remove(active); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
	defer s3.Close()
	if got := s3.RecoveredBlocks(); len(got) != 8 || got[len(got)-1].Index != 8 {
		t.Fatalf("recovered %d blocks after losing the active segment, want 8", len(got))
	}
}

// forkChain builds an alternative chain off the same genesis whose block
// hashes differ from testChain's (different storage price).
func forkChain(t testing.TB, genesis *block.Block, n int) []*block.Block {
	t.Helper()
	blocks := []*block.Block{genesis}
	for i := 1; i <= n; i++ {
		b := block.NewBuilder(blocks[i-1], identity.Address{}, time.Duration(i)*time.Second, 1, 0.9).Seal()
		blocks = append(blocks, b)
	}
	return blocks
}

// TestResetChainSurvivesRestart covers the happy path of the crash-safe
// Reset: a fork replacement rewrites the whole log and the new chain is
// what a restart replays.
func TestResetChainSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	old := testChain(t, 6)
	fork := forkChain(t, old[0], 5)

	s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 3})
	appendAll(t, s, old)
	if err := s.Checkpoint(6, old[6].Hash); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetChain(fork[1:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 3})
	defer s2.Close()
	got := s2.RecoveredBlocks()
	if len(got) != 5 {
		t.Fatalf("recovered %d blocks after reset, want 5", len(got))
	}
	for i, b := range got {
		if b.Hash != fork[i+1].Hash {
			t.Fatalf("recovered block %d is not from the fork", i+1)
		}
	}
}

// TestTornResetCutsStaleTail is the Reset crash-safety regression: a crash
// mid-Reset leaves new-prefix segments alongside stale old-fork segments,
// and recovery must cut at the fork discontinuity instead of splicing old
// history onto the new prefix.
func TestTornResetCutsStaleTail(t *testing.T) {
	dir := t.TempDir()
	old := testChain(t, 6)
	fork := forkChain(t, old[0], 3)

	s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 3})
	appendAll(t, s, old) // segments: 1-3 sealed, 4-6 active
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: the fork's first segment has been renamed
	// into place, but the stale old segment 4-6 was never unlinked.
	if err := WriteWAL(segmentPath(dir, 1), fork[1:4]); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 3})
	got := s2.RecoveredBlocks()
	if len(got) != 3 {
		t.Fatalf("recovered %d blocks from torn reset, want 3", len(got))
	}
	for i, b := range got {
		if b.Hash != fork[i+1].Hash {
			t.Fatalf("block %d spliced from the old fork", i+1)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	// The stale segment must be gone from disk after the recovery rewrite:
	// a second restart sees only the fork prefix.
	if _, err := os.Stat(segmentPath(dir, 4)); !os.IsNotExist(err) {
		t.Fatalf("stale old-fork segment still on disk: %v", err)
	}
	s3 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 3})
	defer s3.Close()
	if got := s3.RecoveredBlocks(); len(got) != 3 || got[2].Hash != fork[3].Hash {
		t.Fatalf("second restart recovered %d blocks", len(got))
	}
}

func TestSnapshotManifestEdgeCases(t *testing.T) {
	blob := []byte("engine state blob")
	setup := func(t *testing.T) (string, []*block.Block) {
		dir := t.TempDir()
		blocks := testChain(t, 10)
		s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
		appendAll(t, s, blocks)
		if err := s.SaveSnapshot(8, blob, spineOf(blocks, 7)); err != nil {
			t.Fatal(err)
		}
		if err := s.CompactBlocks(9); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, blocks
	}
	// Every corruption case must fall back to "no snapshot"; and because
	// the surviving blocks start mid-chain they are unreachable without it,
	// so recovery falls back to a clean empty chain (genesis replay).
	assertCleanFallback := func(t *testing.T, dir string) {
		s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
		defer s.Close()
		if _, _, _, ok := s.RecoveredSnapshot(); ok {
			t.Fatal("corrupt snapshot accepted")
		}
		if got := s.RecoveredBlocks(); len(got) != 0 {
			t.Fatalf("unreachable mid-chain blocks kept: %d", len(got))
		}
		// The store stays usable: a fresh chain persists from genesis.
		fresh := testChain(t, 2)
		appendAll(t, s, fresh)
	}

	t.Run("missing snapshot blob", func(t *testing.T) {
		dir, _ := setup(t)
		if err := os.Remove(snapshotFilePath(dir, 8)); err != nil {
			t.Fatal(err)
		}
		assertCleanFallback(t, dir)
	})
	t.Run("snapshot hash mismatch", func(t *testing.T) {
		dir, _ := setup(t)
		if err := os.WriteFile(snapshotFilePath(dir, 8), []byte("tampered"), 0o644); err != nil {
			t.Fatal(err)
		}
		assertCleanFallback(t, dir)
	})
	t.Run("spine hash mismatch", func(t *testing.T) {
		dir, _ := setup(t)
		if err := os.WriteFile(spineFilePath(dir, 8), []byte("tampered"), 0o644); err != nil {
			t.Fatal(err)
		}
		assertCleanFallback(t, dir)
	})
	t.Run("gap between snapshot and blocks", func(t *testing.T) {
		// Snapshot anchored below the surviving blocks: the blocks are
		// unreachable and dropped, the snapshot is kept.
		dir := t.TempDir()
		blocks := testChain(t, 10)
		s := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
		appendAll(t, s, blocks)
		if err := s.SaveSnapshot(3, blob, spineOf(blocks, 2)); err != nil {
			t.Fatal(err)
		}
		if err := s.CompactBlocks(9); err != nil { // leaves blocks 9-10, gap from 4
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir, Options{Sync: SyncAlways, SegmentBlocks: 4})
		defer s2.Close()
		if _, _, h, ok := s2.RecoveredSnapshot(); !ok || h != 3 {
			t.Fatalf("snapshot lost: ok=%v h=%d", ok, h)
		}
		if got := s2.RecoveredBlocks(); len(got) != 0 {
			t.Fatalf("unreachable blocks above the gap kept: %d", len(got))
		}
	})
	t.Run("newer snapshot replaces older files", func(t *testing.T) {
		dir := t.TempDir()
		blocks := testChain(t, 10)
		s := openStore(t, dir, Options{Sync: SyncAlways})
		appendAll(t, s, blocks)
		if err := s.SaveSnapshot(4, blob, spineOf(blocks, 3)); err != nil {
			t.Fatal(err)
		}
		if err := s.SaveSnapshot(8, blob, spineOf(blocks, 7)); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(snapshotFilePath(dir, 4)); !os.IsNotExist(err) {
			t.Fatal("stale snapshot file not removed")
		}
		if _, err := os.Stat(spineFilePath(dir, 4)); !os.IsNotExist(err) {
			t.Fatal("stale spine file not removed")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir, Options{Sync: SyncAlways})
		defer s2.Close()
		if _, _, h, ok := s2.RecoveredSnapshot(); !ok || h != 8 {
			t.Fatalf("want snapshot at 8, got ok=%v h=%d", ok, h)
		}
	})
}

func TestSpineCodecRoundTrip(t *testing.T) {
	blocks := testChain(t, 6)
	spine := spineOf(blocks, 6)
	raw := EncodeSpine(spine)
	dec, err := DecodeSpine(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, spine) {
		t.Fatal("spine round trip changed headers")
	}
	if _, err := DecodeSpine(raw[:len(raw)-1]); err == nil {
		t.Fatal("truncated spine accepted")
	}
	if _, err := DecodeSpine(append([]byte("XXXX"), raw[4:]...)); err == nil {
		t.Fatal("bad magic accepted")
	}
	empty, err := DecodeSpine(EncodeSpine(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty spine round trip: %v", err)
	}
}

package store

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
	"repro/internal/meta"
)

// BenchmarkWALAppend measures the per-block append cost under each fsync
// policy. The block is representative of the paper's (metadata-only body,
// well under 10 KB).
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		b.Run(policy.String(), func(b *testing.B) {
			genesis := block.Genesis(1)
			w, err := OpenWAL(b.TempDir(), Options{Sync: policy}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			prev := genesis
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				blk := block.NewBuilder(prev, identity.Address{}, time.Duration(i+1)*time.Second, 1, 0).Seal()
				if err := w.Append(blk); err != nil {
					b.Fatal(err)
				}
				prev = blk
			}
			b.SetBytes(int64(prev.EncodedSize() + recordHeaderSize))
		})
	}
}

// BenchmarkDataStoreGet measures serving a ~1 MB data item (the paper's
// item size) cold from disk vs. hot from the LRU cache — the
// FrameDataRequest serving path.
func BenchmarkDataStoreGet(b *testing.B) {
	content := make([]byte, 1<<20)
	for i := range content {
		content[i] = byte(i)
	}
	id := meta.HashData(content)

	for _, bc := range []struct {
		name       string
		cacheBytes int
	}{
		{"cold", -1}, // cache disabled: every Get hits the disk
		{"hot", 0},   // default cache: every Get after the first is a hit
	} {
		b.Run(bc.name, func(b *testing.B) {
			ds, err := NewDataStore(b.TempDir(), bc.cacheBytes)
			if err != nil {
				b.Fatal(err)
			}
			if err := ds.Put(id, content); err != nil {
				b.Fatal(err)
			}
			ds.cache.remove(id) // start cold either way
			b.SetBytes(int64(len(content)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok, err := ds.Get(id); !ok || err != nil {
					b.Fatalf("get: %v %v", ok, err)
				}
			}
		})
	}
}

// BenchmarkStoreRecovery measures Open-time replay cost per chain length.
func BenchmarkStoreRecovery(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("blocks=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{Sync: SyncNone})
			if err != nil {
				b.Fatal(err)
			}
			for _, blk := range testChain(b, n)[1:] {
				if err := s.AppendBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := Open(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(s.RecoveredBlocks()) != n {
					b.Fatalf("recovered %d", len(s.RecoveredBlocks()))
				}
				s.Close()
			}
		})
	}
}

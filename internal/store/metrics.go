package store

import "repro/internal/telemetry"

// Metrics bundles the persistence layer's instrumentation: WAL latency
// histograms (append and fsync, nanoseconds), crash-recovery stats, and
// data-store traffic including the LRU cache hit ratio. All fields are
// nil-safe, so a zero Metrics disables collection; construct with
// NewMetrics to register under a registry and pass via Options.Metrics.
type Metrics struct {
	// WALAppendNs observes the full latency of each Append (write plus
	// any policy-triggered fsync). WALFsyncNs observes fsyncs alone.
	WALAppendNs, WALFsyncNs *telemetry.Histogram
	// WALAppends / WALSyncs count operations.
	WALAppends, WALSyncs *telemetry.Counter
	// WALSegmentsSealed counts segment rolls; WALSegmentsCompacted counts
	// sealed segment files deleted below the prune horizon.
	WALSegmentsSealed, WALSegmentsCompacted *telemetry.Counter
	// RecoveredBlocks counts blocks replayed from the WAL at Open;
	// RecoveryDropped counts scanned blocks discarded by validation.
	RecoveredBlocks, RecoveryDropped *telemetry.Counter
	// DataReads / DataWrites count data-store operations that reached
	// the API (reads include cache hits).
	DataReads, DataWrites *telemetry.Counter
	// LRUHits / LRUMisses split reads by cache outcome; the hit ratio is
	// hits/(hits+misses).
	LRUHits, LRUMisses *telemetry.Counter
}

// NewMetrics registers the store metric set under reg (names "store.*").
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		WALAppendNs:          reg.Histogram("store.wal.append_ns"),
		WALFsyncNs:           reg.Histogram("store.wal.fsync_ns"),
		WALAppends:           reg.Counter("store.wal.appends"),
		WALSyncs:             reg.Counter("store.wal.syncs"),
		WALSegmentsSealed:    reg.Counter("store.wal.segments_sealed"),
		WALSegmentsCompacted: reg.Counter("store.wal.segments_compacted"),
		RecoveredBlocks:      reg.Counter("store.recovery.blocks"),
		RecoveryDropped:      reg.Counter("store.recovery.dropped"),
		DataReads:            reg.Counter("store.data.reads"),
		DataWrites:           reg.Counter("store.data.writes"),
		LRUHits:              reg.Counter("store.lru.hits"),
		LRUMisses:            reg.Counter("store.lru.misses"),
	}
}

// orInert returns m, or an inert all-nil Metrics when m is nil, so
// internal code can increment unconditionally.
func (m *Metrics) orInert() *Metrics {
	if m == nil {
		return &Metrics{}
	}
	return m
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/meta"
)

func TestDataStorePutGet(t *testing.T) {
	ds, err := NewDataStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("pervasive edge data item")
	id := meta.HashData(content)

	if ds.Has(id) {
		t.Fatal("empty store has item")
	}
	if _, ok, _ := ds.Get(id); ok {
		t.Fatal("empty store served item")
	}
	if err := ds.Put(id, content); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put(id, content); err != nil {
		t.Fatalf("idempotent re-put: %v", err)
	}
	got, ok, err := ds.Get(id)
	if err != nil || !ok || string(got) != string(content) {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	// Wrong hash is refused: content addressing is the integrity invariant.
	if err := ds.Put(meta.HashData([]byte("other")), content); err == nil {
		t.Fatal("mismatched hash accepted")
	}
}

func TestDataStoreColdReadVerifiesHash(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDataStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("to be corrupted on disk")
	id := meta.HashData(content)
	if err := ds.Put(id, content); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file behind the store's back, then read through a fresh
	// store (cold cache).
	if err := os.WriteFile(ds.path(id), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold, err := NewDataStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cold.Get(id); ok || err != nil {
		t.Fatalf("corrupted item served: ok=%v err=%v", ok, err)
	}
}

func TestDataStorePrune(t *testing.T) {
	dir := t.TempDir()
	ds, err := NewDataStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ids []meta.DataID
	for i := 0; i < 5; i++ {
		content := []byte(fmt.Sprintf("item-%d", i))
		id := meta.HashData(content)
		ids = append(ids, id)
		if err := ds.Put(id, content); err != nil {
			t.Fatal(err)
		}
	}
	// Plant a stray temp file; Prune must clean it up without counting it.
	stray := filepath.Join(dir, "ab")
	if err := os.MkdirAll(stray, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stray, ".put-123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	expired := map[meta.DataID]bool{ids[1]: true, ids[3]: true}
	removed, err := ds.Prune(func(id meta.DataID) bool { return expired[id] })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("pruned %d items, want 2", removed)
	}
	for i, id := range ids {
		if got := ds.Has(id); got == expired[id] {
			t.Fatalf("item %d: has=%v after prune", i, got)
		}
	}
	if _, err := os.Stat(filepath.Join(stray, ".put-123")); !os.IsNotExist(err) {
		t.Fatal("stray temp file survived prune")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(10)
	mk := func(s string) (meta.DataID, []byte) { return meta.HashData([]byte(s)), []byte(s) }

	idA, a := mk("aaaa") // 4 bytes
	idB, b := mk("bbbb") // 4 bytes
	idC, cc := mk("cccc")
	c.put(idA, a)
	c.put(idB, b)
	// Touch A so B is the eviction victim.
	if _, ok := c.get(idA); !ok {
		t.Fatal("A missing")
	}
	c.put(idC, cc) // 12 bytes total: evicts LRU (B)
	if _, ok := c.get(idB); ok {
		t.Fatal("LRU entry survived over budget")
	}
	if _, ok := c.get(idA); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.get(idC); !ok {
		t.Fatal("new entry missing")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}

	// An entry larger than the whole budget is never cached.
	idBig, big := mk("this-is-way-over-ten-bytes")
	c.put(idBig, big)
	if _, ok := c.get(idBig); ok {
		t.Fatal("over-budget entry cached")
	}
}

// Regression: a zero (or negative) budget means "no cache", but the size
// check `len(content) > budget` let zero-length entries through, so they
// accumulated in the map forever (eviction only fires while used > budget).
func TestLRUCacheZeroBudget(t *testing.T) {
	for _, budget := range []int{0, -5} {
		c := newLRUCache(budget)
		for i := 0; i < 100; i++ {
			id := meta.HashData([]byte{byte(i)})
			c.put(id, nil) // zero-length content
			c.put(id, []byte{byte(i)})
		}
		if c.len() != 0 {
			t.Fatalf("budget %d: cached %d entries, want 0", budget, c.len())
		}
	}
}

// Regression: putting different content under an existing id used to keep
// the stale bytes (the branch just did MoveToFront), silently serving wrong
// data forever. Content is content-addressed so this "cannot happen" — which
// is exactly why a caller bug would have been invisible without this check.
func TestLRUCacheReplaceDifferingContent(t *testing.T) {
	c := newLRUCache(10)
	id := meta.HashData([]byte("x"))
	c.put(id, []byte("old"))
	c.put(id, []byte("newer!")) // same id, different (longer) bytes
	got, ok := c.get(id)
	if !ok || string(got) != "newer!" {
		t.Fatalf("get = %q, %v; want the replacement content", got, ok)
	}
	if c.used != len("newer!") {
		t.Fatalf("used = %d after replacement, want %d", c.used, len("newer!"))
	}

	// Replacement that pushes the cache over budget must evict down.
	idB := meta.HashData([]byte("y"))
	c.put(idB, []byte("bb"))       // used = 8
	c.put(id, []byte("123456789")) // 9 bytes: replacement forces eviction of idB
	if _, ok := c.get(idB); ok {
		t.Fatal("over-budget replacement did not evict the LRU entry")
	}
	if c.used > 10 {
		t.Fatalf("used = %d exceeds budget 10", c.used)
	}
}

func TestDataStoreCacheServesAfterDiskLoss(t *testing.T) {
	// The LRU is the hot path: once cached, a read works even if the file
	// vanishes (and Has still answers from the cache).
	ds, err := NewDataStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	content := []byte("hot item")
	id := meta.HashData(content)
	if err := ds.Put(id, content); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(ds.path(id)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ds.Get(id); !ok {
		t.Fatal("cache did not serve hot item")
	}
}

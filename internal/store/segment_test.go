package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseSegmentStart(t *testing.T) {
	cases := []struct {
		name  string
		start uint64
		ok    bool
	}{
		{"wal-00000000000000000001.log", 1, true},
		{"wal-42.log", 42, true},
		{"wal-.log", 0, false},
		{"wal-abc.log", 0, false},
		{"wal-1.log.tmp", 0, false},
		{"manifest.json", 0, false},
		{"wal.log", 0, false},
	}
	for _, tc := range cases {
		start, ok := parseSegmentStart(tc.name)
		if ok != tc.ok || start != tc.start {
			t.Errorf("parseSegmentStart(%q) = (%d, %v), want (%d, %v)", tc.name, start, ok, tc.start, tc.ok)
		}
	}
}

// TestLegacyWALMigration: a pre-segmentation wal.log is renamed into
// segment form on open and its blocks recovered; an empty legacy log is
// simply dropped.
func TestLegacyWALMigration(t *testing.T) {
	t.Run("populated", func(t *testing.T) {
		dir := t.TempDir()
		blocks := testChain(t, 5)
		if err := WriteWAL(filepath.Join(dir, legacyWALFile), blocks[1:]); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, Options{Sync: SyncAlways})
		defer s.Close()
		if got := len(s.RecoveredBlocks()); got != 5 {
			t.Fatalf("recovered %d blocks from migrated legacy wal, want 5", got)
		}
		if _, err := os.Stat(filepath.Join(dir, legacyWALFile)); !os.IsNotExist(err) {
			t.Fatal("legacy wal.log still present after migration")
		}
		if _, err := os.Stat(segmentPath(dir, 1)); err != nil {
			t.Fatalf("migrated segment missing: %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, legacyWALFile), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, Options{Sync: SyncAlways})
		defer s.Close()
		if got := len(s.RecoveredBlocks()); got != 0 {
			t.Fatalf("recovered %d blocks from empty legacy wal", got)
		}
		if _, err := os.Stat(filepath.Join(dir, legacyWALFile)); !os.IsNotExist(err) {
			t.Fatal("empty legacy wal.log not removed")
		}
	})
}

// TestRecoverSegmentEdgeCases drives recoverSegments through its cut
// rules: an empty final segment is harmless, an empty mid-log segment or
// a file whose first block disagrees with its name cuts the log there and
// unlinks the orphaned tail.
func TestRecoverSegmentEdgeCases(t *testing.T) {
	blocks := testChain(t, 8)

	t.Run("empty-final-segment", func(t *testing.T) {
		dir := t.TempDir()
		if err := WriteWAL(segmentPath(dir, 1), blocks[1:5]); err != nil {
			t.Fatal(err)
		}
		// Crash right after a roll: the fresh segment exists but is empty.
		if err := os.WriteFile(segmentPath(dir, 5), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, Options{Sync: SyncAlways})
		defer s.Close()
		if got := len(s.RecoveredBlocks()); got != 4 {
			t.Fatalf("recovered %d blocks, want 4", got)
		}
	})
	t.Run("empty-mid-segment", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentPath(dir, 1), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteWAL(segmentPath(dir, 5), blocks[5:9]); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, Options{Sync: SyncAlways})
		defer s.Close()
		if got := len(s.RecoveredBlocks()); got != 0 {
			t.Fatalf("recovered %d blocks across an empty mid-log segment", got)
		}
		if _, err := os.Stat(segmentPath(dir, 5)); !os.IsNotExist(err) {
			t.Fatal("orphaned tail segment not unlinked")
		}
	})
	t.Run("name-start-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		if err := WriteWAL(segmentPath(dir, 1), blocks[1:5]); err != nil {
			t.Fatal(err)
		}
		// A segment named for block 5 that actually starts at block 6.
		if err := WriteWAL(segmentPath(dir, 5), blocks[6:9]); err != nil {
			t.Fatal(err)
		}
		s := openStore(t, dir, Options{Sync: SyncAlways})
		defer s.Close()
		if got := len(s.RecoveredBlocks()); got != 4 {
			t.Fatalf("recovered %d blocks, want the 4 before the mismatched segment", got)
		}
		if _, err := os.Stat(segmentPath(dir, 5)); !os.IsNotExist(err) {
			t.Fatal("mismatched segment not unlinked")
		}
	})
}

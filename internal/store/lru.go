package store

import (
	"bytes"
	"container/list"
	"sync"

	"repro/internal/meta"
)

// lruCache is a byte-budgeted LRU over data-item contents. Entries larger
// than the whole budget are never cached (they would evict everything for
// a single-use read).
type lruCache struct {
	mu      sync.Mutex
	budget  int
	used    int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[meta.DataID]*list.Element
}

type lruEntry struct {
	id      meta.DataID
	content []byte
}

func newLRUCache(budget int) *lruCache {
	return &lruCache{
		budget:  budget,
		order:   list.New(),
		entries: make(map[meta.DataID]*list.Element),
	}
}

func (c *lruCache) get(id meta.DataID) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).content, true
}

func (c *lruCache) put(id meta.DataID, content []byte) {
	// A zero or negative budget means "no cache": without the <= 0 guard,
	// zero-length entries would pass the size check and accumulate in the
	// map unboundedly (eviction only fires while used > budget).
	if c.budget <= 0 || len(content) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		// Content is immutable per id (content-addressed), so the stored
		// bytes must match. If they somehow differ — a caller bug or hash
		// collision — keeping the stale entry would silently serve wrong
		// data forever; replace it and fix the byte accounting instead.
		e := el.Value.(*lruEntry)
		if !bytes.Equal(e.content, content) {
			c.used += len(content) - len(e.content)
			e.content = content
		}
		c.order.MoveToFront(el)
		c.evictOverBudgetLocked()
		return
	}
	el := c.order.PushFront(&lruEntry{id: id, content: content})
	c.entries[id] = el
	c.used += len(content)
	c.evictOverBudgetLocked()
}

func (c *lruCache) evictOverBudgetLocked() {
	for c.used > c.budget {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.removeElement(oldest)
	}
}

func (c *lruCache) remove(id meta.DataID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.removeElement(el)
	}
}

func (c *lruCache) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.order.Remove(el)
	delete(c.entries, e.id)
	c.used -= len(e.content)
}

// len reports the number of cached entries (tests).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package store

import (
	"container/list"
	"sync"

	"repro/internal/meta"
)

// lruCache is a byte-budgeted LRU over data-item contents. Entries larger
// than the whole budget are never cached (they would evict everything for
// a single-use read).
type lruCache struct {
	mu      sync.Mutex
	budget  int
	used    int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[meta.DataID]*list.Element
}

type lruEntry struct {
	id      meta.DataID
	content []byte
}

func newLRUCache(budget int) *lruCache {
	return &lruCache{
		budget:  budget,
		order:   list.New(),
		entries: make(map[meta.DataID]*list.Element),
	}
}

func (c *lruCache) get(id meta.DataID) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).content, true
}

func (c *lruCache) put(id meta.DataID, content []byte) {
	if len(content) > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.order.MoveToFront(el)
		return // content is immutable per id (content-addressed)
	}
	el := c.order.PushFront(&lruEntry{id: id, content: content})
	c.entries[id] = el
	c.used += len(content)
	for c.used > c.budget {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.removeElement(oldest)
	}
}

func (c *lruCache) remove(id meta.DataID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[id]; ok {
		c.removeElement(el)
	}
}

func (c *lruCache) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.order.Remove(el)
	delete(c.entries, e.id)
	c.used -= len(e.content)
}

// len reports the number of cached entries (tests).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/identity"
)

// Persisted state snapshots (DESIGN.md §14). The engine's serialized
// StateSnapshot blob is opaque to the store; alongside it the store keeps
// the header spine [1, snapshotHeight] so a restart can rebuild the full
// spine without replaying (or even holding) the pruned bodies. Both files
// are written temp + rename under height-keyed names and referenced from
// the manifest together with their SHA-256es, so a crash between writes
// leaves the previous snapshot intact and any mismatch is detected and
// discarded at Open (falling back to a plain genesis replay).

const (
	snapshotFilePrefix = "snapshot-"
	spineFilePrefix    = "spine-"
	snapshotFileSuffix = ".bin"

	spineRecordSize = 8 + 3*sha256.Size + identity.AddressSize + 8
)

var spineMagic = [4]byte{'S', 'P', 'N', 'E'}

func snapshotFilePath(dir string, height uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", snapshotFilePrefix, height, snapshotFileSuffix))
}

func spineFilePath(dir string, height uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", spineFilePrefix, height, snapshotFileSuffix))
}

// EncodeSpine serializes a header spine deterministically.
func EncodeSpine(hdrs []chain.Header) []byte {
	out := make([]byte, 0, len(spineMagic)+4+len(hdrs)*spineRecordSize)
	out = append(out, spineMagic[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(hdrs)))
	for _, h := range hdrs {
		out = binary.BigEndian.AppendUint64(out, h.Index)
		out = append(out, h.Hash[:]...)
		out = append(out, h.PrevHash[:]...)
		out = append(out, h.Miner[:]...)
		out = binary.BigEndian.AppendUint64(out, uint64(h.Timestamp))
		out = append(out, h.PoSHash[:]...)
	}
	return out
}

// DecodeSpine parses an encoded header spine.
func DecodeSpine(data []byte) ([]chain.Header, error) {
	if len(data) < len(spineMagic)+4 || [4]byte(data[:4]) != spineMagic {
		return nil, errors.New("store: bad spine file header")
	}
	n := binary.BigEndian.Uint32(data[4:8])
	rest := data[8:]
	if uint64(len(rest)) != uint64(n)*spineRecordSize {
		return nil, fmt.Errorf("store: spine file length %d, want %d records", len(rest), n)
	}
	hdrs := make([]chain.Header, n)
	for i := range hdrs {
		rec := rest[i*spineRecordSize:]
		h := &hdrs[i]
		h.Index = binary.BigEndian.Uint64(rec[0:8])
		copy(h.Hash[:], rec[8:])
		copy(h.PrevHash[:], rec[8+sha256.Size:])
		copy(h.Miner[:], rec[8+2*sha256.Size:])
		h.Timestamp = time.Duration(binary.BigEndian.Uint64(rec[8+2*sha256.Size+identity.AddressSize:]))
		copy(h.PoSHash[:], rec[16+2*sha256.Size+identity.AddressSize:])
	}
	return hdrs, nil
}

// writeBlobAtomic writes data to path via temp + fsync + rename.
func writeBlobAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".blob-*")
	if err != nil {
		return fmt.Errorf("store: blob tmp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: blob write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: blob sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: blob close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: blob rename: %w", err)
	}
	return nil
}

// SaveSnapshot durably persists a state snapshot blob plus the header
// spine covering [1, height], then points the manifest at them. Older
// snapshot files are removed afterwards; a crash at any point leaves a
// manifest whose referenced files and hashes still agree.
func (s *Store) SaveSnapshot(height uint64, blob []byte, spine []chain.Header) error {
	if height == 0 {
		return errors.New("store: snapshot height must be positive")
	}
	spineRaw := EncodeSpine(spine)
	if err := writeBlobAtomic(snapshotFilePath(s.dir, height), blob); err != nil {
		return err
	}
	if err := writeBlobAtomic(spineFilePath(s.dir, height), spineRaw); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	blobSum := sha256.Sum256(blob)
	spineSum := sha256.Sum256(spineRaw)
	s.mu.Lock()
	s.manifest.SnapshotHeight = height
	s.manifest.SnapshotHash = hex.EncodeToString(blobSum[:])
	s.manifest.SpineHash = hex.EncodeToString(spineSum[:])
	err := SaveManifest(filepath.Join(s.dir, manifestFile), s.manifest)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return removeStaleSnapshots(s.dir, height)
}

// removeStaleSnapshots deletes snapshot/spine files for heights other than
// keep. Best-effort: a leftover file is harmless (never referenced).
func removeStaleSnapshots(dir string, keep uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		var prefix string
		switch {
		case strings.HasPrefix(name, snapshotFilePrefix):
			prefix = snapshotFilePrefix
		case strings.HasPrefix(name, spineFilePrefix):
			prefix = spineFilePrefix
		default:
			continue
		}
		mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), snapshotFileSuffix)
		h, err := strconv.ParseUint(mid, 10, 64)
		if err != nil || h == keep {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed = true
		}
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}

// loadSnapshot reads and verifies the snapshot + spine pair the manifest
// references. ok is false — with no error — whenever anything is missing
// or fails its hash, which callers treat as "no snapshot" (genesis replay
// fallback).
func loadSnapshot(dir string, man Manifest) (blob []byte, spine []chain.Header, height uint64, ok bool) {
	if man.SnapshotHeight == 0 || man.SnapshotHash == "" {
		return nil, nil, 0, false
	}
	blob, err := os.ReadFile(snapshotFilePath(dir, man.SnapshotHeight))
	if err != nil {
		return nil, nil, 0, false
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != man.SnapshotHash {
		return nil, nil, 0, false
	}
	spineRaw, err := os.ReadFile(spineFilePath(dir, man.SnapshotHeight))
	if err != nil {
		return nil, nil, 0, false
	}
	spineSum := sha256.Sum256(spineRaw)
	if hex.EncodeToString(spineSum[:]) != man.SpineHash {
		return nil, nil, 0, false
	}
	spine, err = DecodeSpine(spineRaw)
	if err != nil {
		return nil, nil, 0, false
	}
	return blob, spine, man.SnapshotHeight, true
}

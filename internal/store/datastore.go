package store

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/meta"
)

// DataStore is a content-addressed file store for data items. Each item
// lives at data/<hex[:2]>/<hex> where hex is its full content hash, so
// the path is derivable from the DataID alone and a directory never grows
// beyond 1/256 of the item population. Writes go through a temp file +
// rename, so a crash leaves either the whole item or nothing. Reads are
// fronted by a bounded LRU cache: the paper's ~1 MB data items make the
// cache the hot path when serving repeated FrameDataRequest fetches.
type DataStore struct {
	dir     string
	cache   *lruCache
	metrics *Metrics // never nil (orInert)
}

// DefaultCacheBytes is the default LRU budget (64 MiB ≈ 64 paper items).
const DefaultCacheBytes = 64 << 20

// NewDataStore creates the store rooted at dir with the given LRU budget
// in bytes (0 = DefaultCacheBytes, negative = no cache).
func NewDataStore(dir string, cacheBytes int) (*DataStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: data dir: %w", err)
	}
	if cacheBytes == 0 {
		cacheBytes = DefaultCacheBytes
	}
	if cacheBytes < 0 {
		cacheBytes = 0
	}
	return &DataStore{dir: dir, cache: newLRUCache(cacheBytes), metrics: (*Metrics)(nil).orInert()}, nil
}

// setMetrics installs the store's instrumentation (Store.Open wires it).
func (s *DataStore) setMetrics(m *Metrics) {
	s.metrics = m.orInert()
}

func (s *DataStore) path(id meta.DataID) string {
	h := hex.EncodeToString(id[:])
	return filepath.Join(s.dir, h[:2], h)
}

// Put stores content under its content hash. The content must hash to id
// (the caller-visible integrity invariant of Section III-B2); storing
// under a mismatched ID is refused. Re-putting an existing item is a
// no-op.
func (s *DataStore) Put(id meta.DataID, content []byte) error {
	if meta.HashData(content) != id {
		return fmt.Errorf("store: content does not hash to %s", id.Short())
	}
	s.metrics.DataWrites.Inc()
	dst := s.path(id)
	if _, err := os.Stat(dst); err == nil {
		s.cache.put(id, content)
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: data subdir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), ".put-*")
	if err != nil {
		return fmt.Errorf("store: data tmp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		return fmt.Errorf("store: data write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: data sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: data close: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("store: data rename: %w", err)
	}
	s.cache.put(id, content)
	return nil
}

// Get returns the item's content. The LRU cache serves hot items without
// touching the disk; cold reads re-verify the content hash so a corrupted
// file surfaces as a miss rather than as bad data.
func (s *DataStore) Get(id meta.DataID) ([]byte, bool, error) {
	s.metrics.DataReads.Inc()
	if content, ok := s.cache.get(id); ok {
		s.metrics.LRUHits.Inc()
		return content, true, nil
	}
	s.metrics.LRUMisses.Inc()
	content, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: data read: %w", err)
	}
	if meta.HashData(content) != id {
		return nil, false, nil // corrupted on disk: treat as missing
	}
	s.cache.put(id, content)
	return content, true, nil
}

// Has reports whether the item exists (cache or disk).
func (s *DataStore) Has(id meta.DataID) bool {
	if _, ok := s.cache.get(id); ok {
		return true
	}
	_, err := os.Stat(s.path(id))
	return err == nil
}

// Delete removes one item from cache and disk.
func (s *DataStore) Delete(id meta.DataID) error {
	s.cache.remove(id)
	err := os.Remove(s.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: data delete: %w", err)
	}
	return nil
}

// Prune walks the store and deletes every item for which expired returns
// true — the on-disk counterpart of StorageView's valid-time expiry
// (items whose metadata valid time has passed no longer earn storage
// credit, so keeping their bytes only wastes the device's capacity).
// Returns the number of items removed. Stray temp files from interrupted
// writes are removed opportunistically.
func (s *DataStore) Prune(expired func(meta.DataID) bool) (int, error) {
	removed := 0
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: prune: %w", err)
	}
	for _, sub := range subdirs {
		if !sub.IsDir() {
			continue
		}
		subPath := filepath.Join(s.dir, sub.Name())
		entries, err := os.ReadDir(subPath)
		if err != nil {
			continue
		}
		for _, e := range entries {
			raw, decErr := hex.DecodeString(e.Name())
			if decErr != nil || len(raw) != len(meta.DataID{}) {
				// Leftover temp file or foreign junk.
				_ = os.Remove(filepath.Join(subPath, e.Name()))
				continue
			}
			var id meta.DataID
			copy(id[:], raw)
			if expired(id) {
				if err := s.Delete(id); err == nil {
					removed++
				}
			}
		}
	}
	return removed, nil
}

package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
	"repro/internal/meta"
)

// testChain builds genesis + n linked blocks with zero miners (VerifyLink
// skips the PoS chaining check for zero miners, so the store-level replay
// checks are exercised without a stake ledger).
func testChain(t testing.TB, n int) []*block.Block {
	t.Helper()
	blocks := []*block.Block{block.Genesis(7)}
	for i := 1; i <= n; i++ {
		b := block.NewBuilder(blocks[i-1], identity.Address{}, time.Duration(i)*time.Second, 1, 0).Seal()
		blocks = append(blocks, b)
	}
	return blocks
}

func openStore(t testing.TB, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func appendAll(t testing.TB, s *Store, blocks []*block.Block) {
	t.Helper()
	for _, b := range blocks {
		if b.Index == 0 {
			continue
		}
		if err := s.AppendBlock(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	chain := testChain(t, 5)

	s := openStore(t, dir, Options{Sync: SyncAlways})
	if got := s.RecoveredBlocks(); len(got) != 0 {
		t.Fatalf("fresh store recovered %d blocks", len(got))
	}
	appendAll(t, s, chain)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	got := s2.RecoveredBlocks()
	if len(got) != 5 {
		t.Fatalf("recovered %d blocks, want 5", len(got))
	}
	for i, b := range got {
		if b.Hash != chain[i+1].Hash {
			t.Fatalf("block %d hash mismatch after recovery", i+1)
		}
	}
}

// TestTornTailTruncated is the kill-after-partial-append case: a crash
// mid-record must lose exactly the torn block, and the store must reopen
// cleanly and keep accepting appends.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	chain := testChain(t, 6)
	s := openStore(t, dir, Options{Sync: SyncAlways})
	appendAll(t, s, chain)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := segmentPath(dir, 1)
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-payload.
	if err := os.Truncate(walPath, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{Sync: SyncAlways})
	got := s2.RecoveredBlocks()
	if len(got) != 5 {
		t.Fatalf("recovered %d blocks after torn tail, want 5", len(got))
	}
	if got[len(got)-1].Hash != chain[5].Hash {
		t.Fatal("recovered tip is not block 5")
	}
	// The file must now end on a record boundary: re-appending block 6
	// and reopening yields the full chain again.
	if err := s2.AppendBlock(chain[6]); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openStore(t, dir, Options{})
	defer s3.Close()
	if got := s3.RecoveredBlocks(); len(got) != 6 || got[5].Hash != chain[6].Hash {
		t.Fatalf("after repair+append recovered %d blocks", len(got))
	}
}

func TestCorruptMiddleRecordKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	chain := testChain(t, 4)
	s := openStore(t, dir, Options{Sync: SyncAlways})
	appendAll(t, s, chain)
	recSize := int64(recordHeaderSize + len(chain[1].Encode()))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte inside the second record.
	walPath := segmentPath(dir, 1)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[recSize+recordHeaderSize+10] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	got := s2.RecoveredBlocks()
	if len(got) != 1 || got[0].Hash != chain[1].Hash {
		t.Fatalf("recovered %d blocks past CRC corruption, want 1", len(got))
	}
}

// TestCheckpointSkipsContentVerification shows the incremental-replay
// contract: a block whose item signature is invalid (content tampered
// after signing, hash recomputed) is rejected on a cold open, but
// accepted when a checkpoint already covers its height — CRC plus hash
// links stand in for the full re-verification below the checkpoint.
func TestCheckpointSkipsContentVerification(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	producer := identity.GenerateSeeded(rng)
	it := &meta.Item{ID: meta.HashData([]byte("x")), Type: "T", DataSize: 1}
	it.Sign(producer)
	it.Properties = "tampered-after-signing"

	genesis := block.Genesis(7)
	bad := block.NewBuilder(genesis, identity.Address{}, time.Second, 1, 0).AddItem(it).Seal()
	if err := bad.VerifySelf(); err == nil {
		t.Fatal("tampered item unexpectedly verifies")
	}

	build := func() string {
		dir := t.TempDir()
		s := openStore(t, dir, Options{Sync: SyncAlways})
		if err := s.AppendBlock(bad); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	cold := openStore(t, build(), Options{})
	defer cold.Close()
	if n := len(cold.RecoveredBlocks()); n != 0 {
		t.Fatalf("cold open kept %d unverifiable blocks, want 0", n)
	}

	// A manifest checkpoint covering height 1 vouches for the block, so
	// the next open keeps it without re-running signature verification.
	dir := build()
	err := SaveManifest(filepath.Join(dir, manifestFile), Manifest{Height: 1, Head: bad.Hash.String()})
	if err != nil {
		t.Fatal(err)
	}
	warm := openStore(t, dir, Options{})
	defer warm.Close()
	got := warm.RecoveredBlocks()
	if len(got) != 1 || got[0].Hash != bad.Hash {
		t.Fatalf("checkpointed open recovered %d blocks, want the vouched block", len(got))
	}
}

func TestResetChain(t *testing.T) {
	dir := t.TempDir()
	chain := testChain(t, 5)
	s := openStore(t, dir, Options{Sync: SyncAlways})
	appendAll(t, s, chain)

	// Fork replacement: a different, shorter persisted chain.
	alt := testChain(t, 3)
	if err := s.ResetChain(alt[1:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir, Options{})
	defer s2.Close()
	got := s2.RecoveredBlocks()
	if len(got) != 3 {
		t.Fatalf("recovered %d blocks after reset, want 3", len(got))
	}
	for i, b := range got {
		if b.Hash != alt[i+1].Hash {
			t.Fatalf("block %d differs from reset chain", i+1)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if m, err := LoadManifest(path); err != nil || m != (Manifest{}) {
		t.Fatalf("missing manifest: %+v, %v", m, err)
	}
	want := Manifest{Height: 9, Head: "abcd", WALBytes: 123}
	if err := SaveManifest(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil || got != want {
		t.Fatalf("got %+v, %v", got, err)
	}
	// Corrupt manifest must error, not panic.
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("corrupt manifest loaded")
	}
}

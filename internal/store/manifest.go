package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Manifest is the periodic checkpoint: the chain head and height as of
// the last Checkpoint call, plus the WAL size at that moment. On the next
// Open, blocks at or below Height skip full content re-verification —
// their integrity is already covered by the WAL record CRC and the
// hash-link walk — making replay cost incremental in the amount of chain
// grown since the last checkpoint.
type Manifest struct {
	// Height is the checkpointed chain height.
	Height uint64 `json:"height"`
	// Head is the hex hash of the block at Height.
	Head string `json:"head"`
	// WALBytes is the WAL size at checkpoint time (informational).
	WALBytes int64 `json:"wal_bytes"`
	// SnapshotHeight is the height of the persisted state snapshot
	// (snapshot-<height>.bin / spine-<height>.bin), 0 when none.
	SnapshotHeight uint64 `json:"snapshot_height,omitempty"`
	// SnapshotHash is the hex SHA-256 of the snapshot blob; restore
	// refuses a blob that does not hash to it.
	SnapshotHash string `json:"snapshot_hash,omitempty"`
	// SpineHash is the hex SHA-256 of the persisted spine file.
	SpineHash string `json:"spine_hash,omitempty"`
}

// LoadManifest reads a manifest; a missing file returns a zero Manifest.
func LoadManifest(path string) (Manifest, error) {
	var m Manifest
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return m, nil
		}
		return m, fmt.Errorf("store: read manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("store: parse manifest: %w", err)
	}
	return m, nil
}

// SaveManifest writes the manifest atomically (temp-file + rename).
func SaveManifest(path string, m Manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("store: manifest tmp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("store: manifest write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: manifest sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: manifest close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: manifest rename: %w", err)
	}
	return nil
}

package block

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := Genesis(1)
	miner := testIdentity(1)
	producer := testIdentity(2)
	it := signedItem(t, producer, "payload")
	it.StoringNodes = []int{3, 4}
	b := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).
		AddItem(it).
		SetStoringNodes([]int{1, 2}).
		SetPrevStoringNodes([]int{0}).
		SetRecentAssignees([]int{5}).
		Seal()

	got, err := Decode(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b)
	}
	if err := got.VerifySelf(); err != nil {
		t.Fatalf("decoded block fails verification: %v", err)
	}
}

func TestEncodeDecodeGenesis(t *testing.T) {
	g := Genesis(7)
	got, err := Decode(g.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != g.Hash {
		t.Fatal("genesis did not round trip")
	}
}

func TestDecodeRejectsTamperedBytes(t *testing.T) {
	g := Genesis(1)
	b := NewBuilder(g, testIdentity(1).Address(), time.Minute, 60, 0.5).Seal()
	enc := b.Encode()
	for _, pos := range []int{0, 8, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0x01
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at %d accepted", pos)
		}
	}
}

func TestDecodeRejectsTruncationAndTrailing(t *testing.T) {
	b := Genesis(1)
	enc := b.Encode()
	for cut := 0; cut < len(enc); cut += 13 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// Property: random garbage must never panic and (except for astronomically
// unlikely collisions) never decode successfully.
func TestDecodeGarbageProperty(t *testing.T) {
	prop := func(data []byte) bool {
		b, err := Decode(data)
		return b == nil || err == nil // just must not panic; both outcomes fine
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: blocks with random field values round-trip.
func TestEncodeDecodeProperty(t *testing.T) {
	miner := testIdentity(3)
	g := Genesis(2)
	prop := func(ts uint32, after uint16, storing, recent []uint8) bool {
		bld := NewBuilder(g, miner.Address(), time.Duration(ts)*time.Second, uint64(after), 0.125)
		s := make([]int, len(storing))
		for i, v := range storing {
			s[i] = int(v)
		}
		rc := make([]int, len(recent))
		for i, v := range recent {
			rc[i] = int(v)
		}
		b := bld.SetStoringNodes(s).SetRecentAssignees(rc).Seal()
		got, err := Decode(b.Encode())
		if err != nil {
			return false
		}
		return got.Hash == b.Hash && reflect.DeepEqual(got.StoringNodes, b.StoringNodes)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

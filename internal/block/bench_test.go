package block

import (
	"testing"
	"time"
)

func benchBlock(b *testing.B) *Block {
	b.Helper()
	g := Genesis(1)
	miner := testIdentity(1)
	producer := testIdentity(2)
	bld := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5)
	for i := 0; i < 3; i++ {
		it := signedItem(b, producer, string(rune('a'+i)))
		it.StoringNodes = []int{1, 2}
		bld.AddItem(it)
	}
	return bld.SetStoringNodes([]int{1, 2}).SetRecentAssignees([]int{3}).Seal()
}

func BenchmarkSeal(b *testing.B) {
	blk := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.Seal()
	}
}

func BenchmarkVerifySelf(b *testing.B) {
	blk := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := blk.VerifySelf(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNextPoSHash(b *testing.B) {
	blk := benchBlock(b)
	addr := testIdentity(3).Address()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.NextPoSHash(addr)
	}
}

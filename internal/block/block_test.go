package block

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/meta"
)

func testIdentity(seed int64) *identity.Identity {
	return identity.GenerateSeeded(rand.New(rand.NewSource(seed)))
}

func signedItem(t testing.TB, id *identity.Identity, payload string) *meta.Item {
	t.Helper()
	it := &meta.Item{
		ID:       meta.HashData([]byte(payload)),
		Type:     "Test/Item",
		Produced: time.Minute,
		ValidFor: time.Hour,
		DataSize: 1 << 20,
	}
	it.Sign(id)
	return it
}

func TestGenesisDeterministic(t *testing.T) {
	a, b := Genesis(7), Genesis(7)
	if a.Hash != b.Hash {
		t.Fatal("same seed produced different genesis blocks")
	}
	c := Genesis(8)
	if a.Hash == c.Hash {
		t.Fatal("different seeds produced identical genesis blocks")
	}
	if a.Index != 0 || !a.Miner.IsZero() {
		t.Fatal("genesis must have index 0 and no miner")
	}
	if err := a.VerifySelf(); err != nil {
		t.Fatalf("genesis VerifySelf: %v", err)
	}
}

func TestBuilderProducesValidBlock(t *testing.T) {
	g := Genesis(1)
	miner := testIdentity(1)
	producer := testIdentity(2)
	it := signedItem(t, producer, "data-0")
	it.StoringNodes = []int{3, 4}
	b := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).
		AddItem(it).
		SetStoringNodes([]int{1, 2}).
		SetPrevStoringNodes([]int{0}).
		SetRecentAssignees([]int{5}).
		Seal()
	if err := b.VerifySelf(); err != nil {
		t.Fatalf("VerifySelf: %v", err)
	}
	if err := b.VerifyLink(g); err != nil {
		t.Fatalf("VerifyLink: %v", err)
	}
	if b.Index != 1 || b.PrevHash != g.Hash {
		t.Fatal("builder linkage fields wrong")
	}
	if b.PoSHash != g.NextPoSHash(miner.Address()) {
		t.Fatal("builder PoSHash not chained per eq. (7)")
	}
}

func TestVerifySelfDetectsTampering(t *testing.T) {
	g := Genesis(1)
	miner := testIdentity(1)
	b := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).Seal()

	mutations := map[string]func(*Block){
		"index":     func(b *Block) { b.Index++ },
		"timestamp": func(b *Block) { b.Timestamp++ },
		"B":         func(b *Block) { b.B *= 2 },
		"miner":     func(b *Block) { b.Miner[0] ^= 1 },
		"poshash":   func(b *Block) { b.PoSHash[0] ^= 1 },
		"storing":   func(b *Block) { b.StoringNodes = []int{9} },
		"recent":    func(b *Block) { b.RecentAssignees = []int{9} },
		"after":     func(b *Block) { b.MinedAfter++ },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cp := b.Clone()
			mutate(cp)
			if err := cp.VerifySelf(); err == nil {
				t.Fatalf("tampered %s passed VerifySelf", name)
			}
		})
	}
}

func TestVerifySelfRejectsForgedItem(t *testing.T) {
	g := Genesis(1)
	miner := testIdentity(1)
	producer := testIdentity(2)
	it := signedItem(t, producer, "data")
	it.Type = "Forged/Type" // breaks the producer signature
	b := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).AddItem(it).Seal()
	if err := b.VerifySelf(); err == nil {
		t.Fatal("block with forged metadata item passed VerifySelf")
	}
}

func TestVerifyLinkErrors(t *testing.T) {
	g := Genesis(1)
	miner := testIdentity(1)
	good := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).Seal()

	t.Run("bad index", func(t *testing.T) {
		b := good.Clone()
		b.Index = 5
		b.Seal()
		if err := b.VerifyLink(g); err == nil {
			t.Fatal("index gap accepted")
		}
	})
	t.Run("bad prev hash", func(t *testing.T) {
		b := good.Clone()
		b.PrevHash[0] ^= 1
		b.Seal()
		if err := b.VerifyLink(g); err == nil {
			t.Fatal("broken hash link accepted")
		}
	})
	t.Run("time regression", func(t *testing.T) {
		b2 := NewBuilder(good, miner.Address(), 0, 1, 0.5).Seal()
		b2.Timestamp = good.Timestamp - time.Second
		b2.Seal()
		if err := b2.VerifyLink(good); err == nil {
			t.Fatal("timestamp regression accepted")
		}
	})
	t.Run("wrong poshash chain", func(t *testing.T) {
		// A miner claiming someone else's PoSHash lineage must be caught.
		other := testIdentity(3)
		b := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).Seal()
		forged := b.Clone()
		forged.PoSHash = g.NextPoSHash(other.Address())
		forged.Seal()
		if err := forged.VerifyLink(g); err != ErrBadPoSHash {
			t.Fatalf("err = %v, want ErrBadPoSHash", err)
		}
	})
}

func TestNextPoSHashDependsOnAccount(t *testing.T) {
	g := Genesis(1)
	a, b := testIdentity(1), testIdentity(2)
	if g.NextPoSHash(a.Address()) == g.NextPoSHash(b.Address()) {
		t.Fatal("PoSHash identical for different accounts")
	}
	if g.NextPoSHash(a.Address()) != g.NextPoSHash(a.Address()) {
		t.Fatal("PoSHash not deterministic")
	}
}

func TestEncodedSizeUnder10KB(t *testing.T) {
	// The paper reports average block size below 10 KB; a block with a
	// typical minute of metadata (a few items) must fit comfortably.
	g := Genesis(1)
	miner := testIdentity(1)
	bld := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5)
	producer := testIdentity(2)
	for i := 0; i < 3; i++ {
		it := signedItem(t, producer, string(rune('a'+i)))
		it.StoringNodes = []int{1, 2, 3}
		bld.AddItem(it)
	}
	b := bld.SetStoringNodes([]int{1, 2}).SetRecentAssignees([]int{3}).Seal()
	if size := b.EncodedSize(); size > 10<<10 {
		t.Fatalf("block size %d bytes, want < 10KB", size)
	}
	if b.EncodedSize() <= 0 {
		t.Fatal("non-positive block size")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Genesis(1)
	miner := testIdentity(1)
	it := signedItem(t, testIdentity(2), "x")
	b := NewBuilder(g, miner.Address(), time.Minute, 60, 0.5).
		AddItem(it).SetStoringNodes([]int{1}).Seal()
	cp := b.Clone()
	cp.StoringNodes[0] = 42
	cp.Items[0].Type = "mutated"
	if b.StoringNodes[0] == 42 || b.Items[0].Type == "mutated" {
		t.Fatal("Clone shares memory with original")
	}
	if err := b.VerifySelf(); err != nil {
		t.Fatalf("original corrupted by clone mutation: %v", err)
	}
}

package block

import (
	"time"

	"repro/internal/identity"
	"repro/internal/meta"
)

// Builder assembles the next block on top of a parent. The zero value is
// not usable; create one with NewBuilder.
type Builder struct {
	b *Block
}

// NewBuilder starts a block extending prev, mined by the given account at
// the given time. minedAfter is t from eq. (8) in whole seconds, and amendB
// the amendment number the miner used.
func NewBuilder(prev *Block, miner identity.Address, ts time.Duration, minedAfter uint64, amendB float64) *Builder {
	return &Builder{b: &Block{
		Index:      prev.Index + 1,
		PrevHash:   prev.Hash,
		Timestamp:  ts,
		Miner:      miner,
		PoSHash:    prev.NextPoSHash(miner),
		B:          amendB,
		MinedAfter: minedAfter,
	}}
}

// AddItem packs a metadata item (already annotated with storing nodes).
func (bl *Builder) AddItem(it *meta.Item) *Builder {
	bl.b.Items = append(bl.b.Items, it)
	return bl
}

// SetStoringNodes records which nodes must store this block's body.
func (bl *Builder) SetStoringNodes(ns []int) *Builder {
	bl.b.StoringNodes = append([]int(nil), ns...)
	return bl
}

// SetPrevStoringNodes repeats the previous block's storing nodes.
func (bl *Builder) SetPrevStoringNodes(ns []int) *Builder {
	bl.b.PrevStoringNodes = append([]int(nil), ns...)
	return bl
}

// SetRecentAssignees records which nodes must cache one more recent block.
func (bl *Builder) SetRecentAssignees(ns []int) *Builder {
	bl.b.RecentAssignees = append([]int(nil), ns...)
	return bl
}

// Seal computes the hash and returns the finished block. The builder must
// not be reused afterwards.
func (bl *Builder) Seal() *Block {
	bl.b.Seal()
	return bl.b
}

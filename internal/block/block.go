// Package block defines the blocks of the edge blockchain (Fig. 2).
//
// A block carries the usual linkage fields (index, previous hash,
// timestamp, current hash) plus the edge-specific components: the metadata
// items it packs, the storage-allocation decisions the miner computed (who
// stores each data item, who stores this block, who caches one more recent
// block), the PoSHash used by the Proof-of-Stake lottery of Section V, and
// the amendment number B of eq. (14).
package block

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/identity"
	"repro/internal/meta"
)

// Hash is a SHA-256 block hash.
type Hash [sha256.Size]byte

// String returns the hex form of the hash.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns an abbreviated hex prefix for logs.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is unset.
func (h Hash) IsZero() bool { return h == Hash{} }

// Block is one block of the chain. Fields are exported for test
// construction; use Builder or the core mining path to create valid blocks.
type Block struct {
	// Index is the height of the block; the genesis block has index 0.
	Index uint64
	// PrevHash links to the previous block.
	PrevHash Hash
	// Timestamp is the simulated creation time.
	Timestamp time.Duration
	// Miner is the account that mined this block (zero for genesis).
	Miner identity.Address
	// PoSHash is the running PoS hash of eq. (7): every node derives its
	// next hit from this value and its own account address.
	PoSHash Hash
	// B is the amendment number of eq. (14) that the miner used; it is
	// recomputed and checked by validators.
	B float64
	// MinedAfter is t in eq. (8): whole seconds elapsed since the previous
	// block's timestamp when the miner's hit condition held.
	MinedAfter uint64
	// Items are the metadata items packed into this block, each annotated
	// with its assigned storing nodes (Section IV-B).
	Items []*meta.Item
	// StoringNodes lists the node IDs assigned to store this block's body.
	StoringNodes []int
	// PrevStoringNodes repeats where the previous block is stored so a
	// node can walk the chain backwards fetching bodies (Section IV-B).
	PrevStoringNodes []int
	// RecentAssignees lists nodes assigned to cache one more recent block
	// in their FIFO recent cache (Section IV-C).
	RecentAssignees []int
	// Hash is the block's own hash over all fields above.
	Hash Hash
}

// Validation errors.
var (
	ErrBadHash      = errors.New("block: stored hash does not match content")
	ErrBadLink      = errors.New("block: previous-hash link mismatch")
	ErrBadIndex     = errors.New("block: index is not previous index + 1")
	ErrBadTimestamp = errors.New("block: timestamp not after previous block")
	ErrBadPoSHash   = errors.New("block: PoSHash does not chain from previous block")
)

func putList(buf *bytes.Buffer, ns []int) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(len(ns)))
	buf.Write(b[:])
	for _, n := range ns {
		binary.BigEndian.PutUint64(b[:], uint64(int64(n)))
		buf.Write(b[:])
	}
}

// hashInput is the canonical byte encoding of everything the block hash
// covers (all fields except Hash itself).
func (b *Block) hashInput() []byte {
	var buf bytes.Buffer
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], b.Index)
	buf.Write(u[:])
	buf.Write(b.PrevHash[:])
	binary.BigEndian.PutUint64(u[:], uint64(b.Timestamp))
	buf.Write(u[:])
	buf.Write(b.Miner[:])
	buf.Write(b.PoSHash[:])
	binary.BigEndian.PutUint64(u[:], math.Float64bits(b.B))
	buf.Write(u[:])
	binary.BigEndian.PutUint64(u[:], b.MinedAfter)
	buf.Write(u[:])
	binary.BigEndian.PutUint64(u[:], uint64(len(b.Items)))
	buf.Write(u[:])
	for _, it := range b.Items {
		enc := it.Encode()
		binary.BigEndian.PutUint64(u[:], uint64(len(enc)))
		buf.Write(u[:])
		buf.Write(enc)
	}
	putList(&buf, b.StoringNodes)
	putList(&buf, b.PrevStoringNodes)
	putList(&buf, b.RecentAssignees)
	return buf.Bytes()
}

// ComputeHash returns the hash of the block's current content.
func (b *Block) ComputeHash() Hash {
	return Hash(sha256.Sum256(b.hashInput()))
}

// Seal fills the Hash field from the current content.
func (b *Block) Seal() { b.Hash = b.ComputeHash() }

// NextPoSHash computes POSHash(t+1, i) = Hash[POSHash(t) + Account_i]
// (eq. 7) for the account that mines the block after this one.
func (b *Block) NextPoSHash(account identity.Address) Hash {
	var buf [2 * sha256.Size]byte
	copy(buf[:sha256.Size], b.PoSHash[:])
	copy(buf[sha256.Size:], account[:])
	return Hash(sha256.Sum256(buf[:]))
}

// VerifySelf checks internal consistency: the stored hash matches the
// content and every packed metadata item carries a valid producer
// signature.
func (b *Block) VerifySelf() error {
	if b.ComputeHash() != b.Hash {
		return ErrBadHash
	}
	for _, it := range b.Items {
		if err := it.Verify(); err != nil {
			return fmt.Errorf("block %d: %w", b.Index, err)
		}
	}
	return nil
}

// VerifyLink checks that b correctly extends prev: index, hash link,
// timestamp monotonicity and the PoSHash chaining rule of eq. (7).
func (b *Block) VerifyLink(prev *Block) error {
	if b.Index != prev.Index+1 {
		return fmt.Errorf("%w: got %d after %d", ErrBadIndex, b.Index, prev.Index)
	}
	if b.PrevHash != prev.Hash {
		return ErrBadLink
	}
	if b.Timestamp < prev.Timestamp {
		return fmt.Errorf("%w: %v before %v", ErrBadTimestamp, b.Timestamp, prev.Timestamp)
	}
	if !b.Miner.IsZero() && b.PoSHash != prev.NextPoSHash(b.Miner) {
		return ErrBadPoSHash
	}
	return nil
}

// EncodedSize approximates the wire size of the block in bytes: the hash
// input plus the 32-byte hash itself. Used for network and storage
// accounting (paper: average block size under 10 KB).
func (b *Block) EncodedSize() int {
	return len(b.hashInput()) + sha256.Size
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	cp := *b
	cp.Items = make([]*meta.Item, len(b.Items))
	for i, it := range b.Items {
		cp.Items[i] = it.Clone()
	}
	cp.StoringNodes = append([]int(nil), b.StoringNodes...)
	cp.PrevStoringNodes = append([]int(nil), b.PrevStoringNodes...)
	cp.RecentAssignees = append([]int(nil), b.RecentAssignees...)
	return &cp
}

// Genesis builds the genesis block. The seed diversifies the initial
// PoSHash between simulations.
func Genesis(seed int64) *Block {
	var ph Hash
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	ph = Hash(sha256.Sum256(b[:]))
	g := &Block{
		Index:     0,
		Timestamp: 0,
		PoSHash:   ph,
		B:         0,
	}
	g.Seal()
	return g
}

package block

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/meta"
)

// Wire codec for blocks. The encoding is the canonical hash input followed
// by the 32-byte block hash, so Decode can verify integrity for free. Used
// by the live p2p transport; the in-process simulation passes pointers and
// only uses EncodedSize for accounting.

var errTruncated = errors.New("block: truncated input")

// Encode serializes the block.
func (b *Block) Encode() []byte {
	in := b.hashInput()
	out := make([]byte, 0, len(in)+32)
	out = append(out, in...)
	out = append(out, b.Hash[:]...)
	return out
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = errTruncated
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) hash() (h Hash) {
	copy(h[:], r.take(len(h)))
	return h
}

func (r *reader) intList(maxLen int) []int {
	n := int(r.uint64())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxLen {
		r.err = fmt.Errorf("block: list length %d exceeds cap %d", n, maxLen)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(r.uint64()))
	}
	return out
}

// maxListLen bounds decoded list lengths against corrupt length prefixes.
const maxListLen = 1 << 16

// Decode parses a block encoded by Encode and verifies that the embedded
// hash matches the content.
func Decode(data []byte) (*Block, error) {
	r := &reader{b: data}
	b := &Block{}
	b.Index = r.uint64()
	b.PrevHash = r.hash()
	b.Timestamp = time.Duration(r.uint64())
	copy(b.Miner[:], r.take(len(b.Miner)))
	b.PoSHash = r.hash()
	b.B = math.Float64frombits(r.uint64())
	b.MinedAfter = r.uint64()
	nItems := int(r.uint64())
	if r.err == nil && (nItems < 0 || nItems > maxListLen) {
		return nil, fmt.Errorf("block: absurd item count %d", nItems)
	}
	for i := 0; i < nItems && r.err == nil; i++ {
		itemLen := int(r.uint64())
		raw := r.take(itemLen)
		if r.err != nil {
			break
		}
		it, err := meta.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("block: item %d: %w", i, err)
		}
		b.Items = append(b.Items, it)
	}
	b.StoringNodes = r.intList(maxListLen)
	b.PrevStoringNodes = r.intList(maxListLen)
	b.RecentAssignees = r.intList(maxListLen)
	b.Hash = r.hash()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("block: %d trailing bytes", len(data)-r.off)
	}
	if b.ComputeHash() != b.Hash {
		return nil, ErrBadHash
	}
	return b, nil
}

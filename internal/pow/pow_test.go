package pow

import (
	"math"
	"math/rand"
	"testing"
)

func TestLeadingZeroBits(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want int
	}{
		{"high bit set", []byte{0x80}, 0},
		{"one leading zero", []byte{0x40}, 1},
		{"nibble", []byte{0x0F}, 4},
		{"full zero byte", []byte{0x00, 0xFF}, 8},
		{"two zero bytes", []byte{0x00, 0x00, 0x01}, 23},
		{"all zeros", []byte{0x00, 0x00}, 16},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LeadingZeroBits(tt.in); got != tt.want {
				t.Errorf("LeadingZeroBits(%x) = %d, want %d", tt.in, got, tt.want)
			}
		})
	}
}

func TestMineAndVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	header := []byte("block header bytes")
	res, err := Mine(header, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	if LeadingZeroBits(res.Digest[:]) < 12 {
		t.Fatalf("digest %x does not meet difficulty", res.Digest)
	}
	if !Verify(header, res.Nonce, 12) {
		t.Fatal("Verify rejects the mined nonce")
	}
	if Verify(header, res.Nonce+1, 12) && Verify(header, res.Nonce+2, 12) {
		t.Fatal("neighboring nonces also verify; suspicious")
	}
	if res.Hashes == 0 {
		t.Fatal("zero hash count")
	}
}

func TestMineZeroDifficulty(t *testing.T) {
	res, err := Mine([]byte("h"), 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Hashes != 1 {
		t.Fatalf("zero difficulty took %d hashes, want 1", res.Hashes)
	}
}

func TestMineRejectsBadDifficulty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := Mine([]byte("h"), -1, rng); err == nil {
		t.Fatal("negative difficulty accepted")
	}
	if _, err := Mine([]byte("h"), MaxDifficultyBits+1, rng); err == nil {
		t.Fatal("excessive difficulty accepted")
	}
}

func TestMineHashCountDistribution(t *testing.T) {
	// Mean hash count over many runs should be near 2^bits.
	rng := rand.New(rand.NewSource(4))
	const bits = 10
	const runs = 200
	var total uint64
	for i := 0; i < runs; i++ {
		res, err := Mine([]byte{byte(i), byte(i >> 8)}, bits, rng)
		if err != nil {
			t.Fatal(err)
		}
		total += res.Hashes
	}
	mean := float64(total) / runs
	want := ExpectedHashes(bits)
	if mean < want/2 || mean > want*2 {
		t.Fatalf("mean hashes %.0f too far from expected %.0f", mean, want)
	}
	t.Logf("mean hashes %.0f (expected %.0f)", mean, want)
}

func TestExpectedHashes(t *testing.T) {
	if got := ExpectedHashes(16); got != 65536 {
		t.Fatalf("ExpectedHashes(16) = %v, want 65536", got)
	}
	if got := ExpectedHashes(0); got != 1 {
		t.Fatalf("ExpectedHashes(0) = %v, want 1", got)
	}
}

func TestSimulatedHashesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const bits = 16
	const runs = 2000
	var total float64
	for i := 0; i < runs; i++ {
		n := SimulatedHashes(bits, rng)
		if n == 0 {
			t.Fatal("zero simulated hashes")
		}
		total += float64(n)
	}
	mean := total / runs
	want := ExpectedHashes(bits)
	if mean < want*0.85 || mean > want*1.15 {
		t.Fatalf("simulated mean %.0f too far from %.0f", mean, want)
	}
}

func TestMineDeterministicGivenRNG(t *testing.T) {
	header := []byte("deterministic")
	a, err := Mine(header, 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(header, 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nonce != b.Nonce || a.Hashes != b.Hashes {
		t.Fatal("mining not deterministic for identical rng state")
	}
}

func TestExpectedHashesMonotone(t *testing.T) {
	prev := 0.0
	for bits := 0; bits <= 24; bits++ {
		e := ExpectedHashes(bits)
		if e <= prev {
			t.Fatalf("ExpectedHashes not increasing at %d bits", bits)
		}
		prev = e
	}
	if math.IsInf(ExpectedHashes(MaxDifficultyBits), 1) {
		t.Fatal("overflow at max difficulty")
	}
}

// Package pow implements the Proof-of-Work baseline used in the Fig. 6
// energy comparison: a miner searches for a nonce such that the block hash
// starts with a given number of zero bits (the paper uses "4 zeros at the
// beginning of the block hash", i.e. 4 hex digits = 16 bits, averaging
// 25 s per block on the test phone).
//
// The package counts every hash attempt so the energy model can convert
// work into battery drain.
package pow

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
)

// DefaultDifficultyBits corresponds to the paper's "4 zeros" hex prefix.
const DefaultDifficultyBits = 16

// MaxDifficultyBits bounds the search so a misconfigured difficulty cannot
// hang a simulation.
const MaxDifficultyBits = 40

// ErrExhausted is returned if the nonce budget runs out before a solution
// is found (practically impossible below MaxDifficultyBits).
var ErrExhausted = errors.New("pow: nonce space exhausted")

// Result reports a successful mining run.
type Result struct {
	// Nonce is the winning nonce.
	Nonce uint64
	// Hashes is the number of hash evaluations performed, including the
	// winning one. This drives the energy model.
	Hashes uint64
	// Digest is the winning hash.
	Digest [sha256.Size]byte
}

// LeadingZeroBits counts the zero bits at the front of the digest.
func LeadingZeroBits(digest []byte) int {
	bits := 0
	for _, b := range digest {
		if b == 0 {
			bits += 8
			continue
		}
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				return bits
			}
			bits++
		}
	}
	return bits
}

// Mine searches for a nonce such that SHA-256(header ‖ nonce) has at least
// difficultyBits leading zero bits. The starting nonce comes from rng so
// repeated simulated miners do different work; the search is deterministic
// given the rng state.
func Mine(header []byte, difficultyBits int, rng *rand.Rand) (*Result, error) {
	if difficultyBits < 0 || difficultyBits > MaxDifficultyBits {
		return nil, errors.New("pow: difficulty out of range")
	}
	buf := make([]byte, len(header)+8)
	copy(buf, header)
	nonce := rng.Uint64()
	var hashes uint64
	for attempts := uint64(0); attempts < math.MaxUint64; attempts++ {
		binary.BigEndian.PutUint64(buf[len(header):], nonce)
		d := sha256.Sum256(buf)
		hashes++
		if LeadingZeroBits(d[:]) >= difficultyBits {
			return &Result{Nonce: nonce, Hashes: hashes, Digest: d}, nil
		}
		nonce++
	}
	return nil, ErrExhausted
}

// ExpectedHashes returns the mean number of hash evaluations needed at the
// given difficulty (2^bits).
func ExpectedHashes(difficultyBits int) float64 {
	return math.Exp2(float64(difficultyBits))
}

// Verify checks that the digest of header ‖ nonce meets the difficulty.
func Verify(header []byte, nonce uint64, difficultyBits int) bool {
	buf := make([]byte, len(header)+8)
	copy(buf, header)
	binary.BigEndian.PutUint64(buf[len(header):], nonce)
	d := sha256.Sum256(buf)
	return LeadingZeroBits(d[:]) >= difficultyBits
}

// SimulatedHashes draws the number of hashes a mining round would take at
// the given difficulty without doing the work: the attempt count is
// geometrically distributed with success probability 2^-bits. Used by the
// Fig. 6 harness to extend runs cheaply at high difficulty.
func SimulatedHashes(difficultyBits int, rng *rand.Rand) uint64 {
	p := 1.0 / math.Exp2(float64(difficultyBits))
	// Inverse-CDF sampling of the geometric distribution.
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	n := math.Ceil(math.Log(1-u) / math.Log(1-p))
	if n < 1 {
		n = 1
	}
	return uint64(n)
}

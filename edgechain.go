// Package edgechain is a Go implementation of the edge blockchain from
// "Resource Allocation and Consensus on Edge Blockchain in Pervasive Edge
// Computing Environments" (Huang et al., ICDCS 2019).
//
// The library provides:
//
//   - a blockchain whose blocks carry small metadata items while the
//     actual data items live on a few optimally chosen nodes;
//   - the fair-and-efficient storage allocation of Section IV, built on
//     the Fairness Degree Cost (eq. 1), the Range-Distance Cost (eq. 2)
//     and Uncapacitated Facility Location solvers;
//   - the recent-block FIFO allocation of Section IV-C for fast recovery
//     of missing blocks after disconnections;
//   - the contribution-weighted Proof-of-Stake mechanism of Section V
//     (hit/target lottery with the eq. 14 amendment), plus a Proof-of-Work
//     baseline and a calibrated device energy model;
//   - a deterministic discrete-event simulation of the pervasive edge
//     environment (multi-hop radio, mobility, disconnections), a full Raft
//     implementation for general information consensus, and harnesses that
//     regenerate every figure of the paper's evaluation.
//
// # Quick start
//
//	cfg := edgechain.DefaultConfig(20) // 20 nodes, paper parameters
//	sys, err := edgechain.NewSimulation(cfg)
//	if err != nil { ... }
//	if err := sys.Run(30 * time.Minute); err != nil { ... }
//	res := sys.Results()
//	fmt.Printf("height=%d gini=%.3f delivery=%.2fs\n",
//	    res.ChainHeight, res.StorageGini, res.Delivery.Mean)
//
// See examples/ for runnable scenarios and cmd/figures for the
// paper-figure harness.
package edgechain

import (
	cryptorand "crypto/rand"
	mathrand "math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/identity"
	"repro/internal/livenode"
	"repro/internal/meta"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Config parametrizes a simulation; DefaultConfig returns the paper's
// Section VI setup.
type Config = core.Config

// System is one running deployment.
type System = core.System

// Node is one edge device in a deployment.
type Node = core.Node

// Results summarizes a finished run.
type Results = core.Results

// PlacementStrategy selects how storing nodes are chosen.
type PlacementStrategy = core.PlacementStrategy

// Placement strategies for Config.Placement.
const (
	// PlaceOptimal is the paper's fair-and-efficient UFL placement.
	PlaceOptimal = core.PlaceOptimal
	// PlaceRandom is the random baseline of the Fig. 5 comparison.
	PlaceRandom = core.PlaceRandom
)

// ConsensusAlgo selects the mining consensus for Config.Consensus.
type ConsensusAlgo = core.ConsensusAlgo

// Consensus algorithms of the Fig. 6 comparison.
const (
	// ConsensusPoS is the paper's contribution-weighted Proof of Stake.
	ConsensusPoS = core.ConsensusPoS
	// ConsensusPoW is the Proof-of-Work baseline with in-system energy
	// accounting.
	ConsensusPoW = core.ConsensusPoW
)

// MetadataItem is one metadata record stored in blocks (Section III-B).
type MetadataItem = meta.Item

// MetadataQuery matches metadata items by type, location, freshness and
// producer.
type MetadataQuery = meta.Query

// DataID identifies a data item by its content hash.
type DataID = meta.DataID

// Summary holds descriptive statistics (mean, min, max, percentiles).
type Summary = metrics.Summary

// DefaultConfig returns the paper's simulation parameters for n nodes:
// 300 m x 300 m field, 70 m radio range, 30 m mobility, 250-item storage,
// 1 MB data items, 60 s expected block time, 10% requesters.
func DefaultConfig(n int) Config { return core.DefaultConfig(n) }

// NewSimulation builds a deployment. The same Config.Seed yields an
// identical run.
func NewSimulation(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// RunSimulation is the one-call convenience: build, run for the duration,
// and return the results.
func RunSimulation(cfg Config, d time.Duration) (*Results, error) {
	sys, err := NewSimulation(cfg)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(d); err != nil {
		return nil, err
	}
	return sys.Results(), nil
}

// Gini computes the Gini disparity coefficient used for the storage
// fairness metric (Fig. 4b).
func Gini(values []float64) float64 { return metrics.Gini(values) }

// Experiment harnesses: each Run*/Print* pair regenerates one figure of
// the paper's evaluation (see EXPERIMENTS.md).
type (
	// Fig4Config parametrizes the Fig. 4 sweep (overhead / Gini /
	// delivery across node counts and data rates).
	Fig4Config = experiments.Fig4Config
	// Fig4Row is one (nodes, rate) cell of Fig. 4.
	Fig4Row = experiments.Fig4Row
	// Fig5Config parametrizes the Fig. 5 placement comparison.
	Fig5Config = experiments.Fig5Config
	// Fig5Row compares optimal and random placement at one node count.
	Fig5Row = experiments.Fig5Row
	// Fig6Config parametrizes the PoW-vs-PoS energy experiment.
	Fig6Config = experiments.Fig6Config
	// Fig6Result holds both algorithms' battery traces.
	Fig6Result = experiments.Fig6Result
)

// RunFig4 regenerates the Fig. 4 sweep.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) { return experiments.RunFig4(cfg) }

// RunFig5 regenerates the Fig. 5 placement comparison.
func RunFig5(cfg Fig5Config) ([]Fig5Row, error) { return experiments.RunFig5(cfg) }

// RunFig6 regenerates the Fig. 6 energy comparison.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) { return experiments.RunFig6(cfg) }

// Workload traces: pre-generated data-production schedules that can be
// replayed across configurations via Config.Trace for paired comparisons.
type (
	// WorkloadConfig parametrizes trace generation.
	WorkloadConfig = workload.Config
	// WorkloadTrace is a deterministic, time-ordered workload.
	WorkloadTrace = workload.Trace
)

// GenerateWorkload materializes a deterministic workload trace.
func GenerateWorkload(cfg WorkloadConfig) (*WorkloadTrace, error) {
	return workload.Generate(cfg)
}

// Open-loop streaming workloads: the generalization of WorkloadConfig
// with time-varying arrival rates (diurnal sinusoid, flash-crowd bursts),
// Zipf popularity skew, and millions of logical users multiplexed over
// the node set. Events are generated lazily in O(1) memory; Drain
// materializes them into a WorkloadTrace for Config.Trace replay.
type (
	// StreamWorkloadConfig parametrizes an open-loop event stream.
	StreamWorkloadConfig = workload.StreamConfig
	// WorkloadStream is a lazy, seeded open-loop event generator.
	WorkloadStream = workload.Stream
	// WorkloadEvent is one data production event.
	WorkloadEvent = workload.Event
)

// NewWorkloadStream builds an open-loop generator; same config, same
// event sequence. A config with none of the streaming knobs set yields
// exactly the GenerateWorkload events for the same seed.
func NewWorkloadStream(cfg StreamWorkloadConfig) (*WorkloadStream, error) {
	return workload.NewStream(cfg)
}

// PickRequesterPool selects the paper's consumer pool (a fraction of the
// nodes, Section VI-A) for a workload configuration.
func PickRequesterPool(numNodes int, fraction float64, rng *mathrand.Rand) []int {
	return workload.PickRequesterPool(numNodes, fraction, rng)
}

// Live deployment: the same blockchain over real TCP sockets and the wall
// clock (see cmd/edgenode for the CLI form).
type (
	// LiveConfig configures one live node.
	LiveConfig = livenode.Config
	// LiveNode is a live blockchain node.
	LiveNode = livenode.Node
)

// NewLiveNode starts a live node listening on cfg.ListenAddr.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return livenode.New(cfg) }

// Identity is a node key pair with its derived account address.
type Identity = identity.Identity

// Address is an account address (SHA-256 of the public key).
type Address = identity.Address

// NewIdentity generates a key pair from crypto/rand.
func NewIdentity() (*Identity, error) { return identity.Generate(cryptorand.Reader) }

// NewSeededIdentity generates a deterministic key pair for simulations and
// demos. Never use it with real value at stake.
func NewSeededIdentity(rng *mathrand.Rand) *Identity { return identity.GenerateSeeded(rng) }

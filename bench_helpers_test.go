package edgechain

import (
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/geo"
	"repro/internal/identity"
	"repro/internal/netsim"
	"repro/internal/pos"
	"repro/internal/ufl"
)

// benchInstance builds a paper-shaped UFL instance with n nodes.
func benchInstance(n int) *ufl.Instance {
	rng := rand.New(rand.NewSource(1))
	pls, _ := geo.PlaceNodesConnected(geo.DefaultField(), n, 30, 70, rng, 100)
	topo := netsim.NewTopology(netsim.HomePositions(pls), 70, nil)
	states := make([]alloc.NodeState, n)
	for i := range states {
		states[i] = alloc.NodeState{Used: rng.Intn(200), Capacity: 250, MobilityRange: 30}
	}
	return alloc.NewPlanner(70).BuildInstance(topo, states)
}

// benchLedger builds a ledger with n accounts and a genesis block.
func benchLedger(n int) (*pos.Ledger, *block.Block) {
	rng := rand.New(rand.NewSource(2))
	accounts := make([]identity.Address, n)
	for i := range accounts {
		accounts[i] = identity.GenerateSeeded(rng).Address()
	}
	return pos.NewLedger(accounts), block.Genesis(1)
}
